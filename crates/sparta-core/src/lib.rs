//! Sparta — scalable parallel top-k retrieval (PPoPP '20) — and every
//! baseline it is evaluated against.
//!
//! The primary contribution is [`sparta::Sparta`], a parallel
//! threshold-algorithm variant with judicious context sharing: a
//! striped shared candidate map that a background *cleaner* keeps
//! pruning, per-segment (lazy) upper-bound updates, and thread-local
//! map replicas once the candidate set fits in cache (§4).
//!
//! The baselines of the paper's case study (§5.2) are implemented in
//! full:
//!
//! | algorithm | module | paper role |
//! |---|---|---|
//! | sequential NRA / RA | [`ta`] | the Threshold Algorithm [Fagin et al.] |
//! | pRA | [`pra`] | parallel RA with a shared heap |
//! | pNRA | [`pnra`] | naïve shared-state NRA |
//! | sNRA | [`snra`] | shared-nothing NRA |
//! | WAND / BMW / MaxScore | [`docorder`] | document-order engines |
//! | pBMW | [`docorder::pbmw`] | doc-sharded parallel BMW [Rojas et al.] |
//! | JASS / pJASS | [`jass`], [`pjass`] | score-at-a-time [Lin & Trotman; Mackenzie et al.] |
//!
//! Every algorithm implements [`Algorithm`] and is exercised through
//! the same [`sparta_exec::Executor`] machinery, so latency and
//! throughput experiments use identical code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod docorder;
pub mod jass;
pub mod oracle;
pub mod pjass;
pub mod pnra;
pub mod pra;
pub mod recall;
pub mod registry;
pub mod result;
pub mod shared_heap;
pub mod snra;
pub mod sparta;
pub mod ta;
pub mod trace;

pub use config::{SearchConfig, Variant};
pub use oracle::Oracle;
pub use recall::recall_of_docs;
pub use registry::{algorithm_by_name, all_algorithms};
pub use result::{SearchHit, TopKResult, WorkStats};
pub use trace::{TraceEvent, TraceSink};

use sparta_corpus::types::Query;
use sparta_exec::Executor;
use sparta_index::Index;
use std::sync::Arc;

/// A top-k retrieval algorithm.
pub trait Algorithm: Send + Sync {
    /// Short identifier used in experiment output (e.g. `"sparta"`).
    fn name(&self) -> &'static str;

    /// Retrieves the (approximate) top-k documents for `query`.
    ///
    /// * `index` — shared index; cursors opened per worker.
    /// * `cfg` — k plus the variant parameters (Δ, f, p, segment size…).
    /// * `exec` — supplies worker threads; sequential algorithms run on
    ///   the calling thread regardless.
    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult;
}
