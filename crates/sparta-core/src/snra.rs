//! sNRA — shared-nothing parallelization of NRA (§5.2.2).
//!
//! "sNRA is a shared-nothing parallelization of NRA, where the index
//! is partitioned to [P] shards by document id. Each thread finds the
//! top-k documents in its shard by running NRA independently with
//! thread-local data structures. When all threads complete, their
//! lists are merged and the global top-k documents are kept."
//!
//! The paper's point with this baseline is that *not* sharing state
//! costs more than sharing it carefully: every shard must traverse
//! deep into its lists because its local threshold is much weaker than
//! the global one (the paper measures sNRA at 2× worse than even
//! sequential NRA on ClueWeb). Shard materialization models the
//! offline pre-partitioning of the index; its cost is excluded from
//! the reported latency like the paper excludes index building.

use crate::config::SearchConfig;
use crate::result::{finalize_hits, SearchHit, TopKResult, WorkStats};
use crate::ta::nra::run_nra;
use crate::trace::TraceSink;
use crate::Algorithm;
use parking_lot::Mutex;
use sparta_collections::BoundedTopK;
use sparta_corpus::types::Query;
use sparta_exec::{Executor, JobQueue};
use sparta_index::cursor::SliceScoreCursor;
use sparta_index::{Index, Posting, ScoreCursor};
use sparta_obs::{Phase, QueryTrace};
use std::sync::Arc;
use std::time::Instant;

/// The sNRA baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct SNra;

/// Pre-partitioned score-ordered posting lists: `shards[s][i]` is the
/// slice of term i's list belonging to shard s (docs with
/// `doc % P == s`), still in score order.
pub struct ShardedLists {
    shards: Vec<Vec<Arc<Vec<Posting>>>>,
}

impl ShardedLists {
    /// Partitions the query terms' posting lists into `p` doc-id
    /// shards by one sequential pass per list (filtering preserves
    /// score order).
    pub fn build(index: &Arc<dyn Index>, query: &Query, p: usize) -> Self {
        assert!(p >= 1);
        let m = query.terms.len();
        let mut shards: Vec<Vec<Vec<Posting>>> = (0..p).map(|_| vec![Vec::new(); m]).collect();
        for (i, &t) in query.terms.iter().enumerate() {
            let mut c = index.score_cursor(t);
            while let Some(post) = c.next() {
                shards[(post.doc as usize) % p][i].push(post);
            }
        }
        Self {
            shards: shards
                .into_iter()
                .map(|terms| terms.into_iter().map(Arc::new).collect())
                .collect(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether there are no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Opens owning cursors over shard `s`'s lists.
    pub fn cursors(&self, s: usize) -> Vec<Box<dyn ScoreCursor + 'static>> {
        self.shards[s]
            .iter()
            .map(|l| {
                Box::new(SliceScoreCursor::new(ArcList(Arc::clone(l)))) as Box<dyn ScoreCursor>
            })
            .collect()
    }
}

struct ArcList(Arc<Vec<Posting>>);

impl AsRef<[Posting]> for ArcList {
    fn as_ref(&self) -> &[Posting] {
        self.0.as_slice()
    }
}

/// Per-shard partial hits plus that shard's work counters.
type ShardResult = Mutex<(Vec<SearchHit>, WorkStats)>;

impl Algorithm for SNra {
    fn name(&self) -> &'static str {
        "snra"
    }

    fn search(
        &self,
        index: &Arc<dyn Index>,
        query: &Query,
        cfg: &SearchConfig,
        exec: &dyn Executor,
    ) -> TopKResult {
        let p = exec.parallelism().max(1);
        let sharded = Arc::new(ShardedLists::build(index, query, p));
        // Shard construction models offline pre-partitioning; latency
        // measurement starts here, matching the paper's methodology.
        // lint: allow(wall-clock): end-to-end latency endpoint reported in TopKResult stats
        let start = Instant::now();
        let trace = Arc::new(TraceSink::with_clock(cfg.trace, cfg.clock));
        let spans = Arc::new(QueryTrace::new(cfg.spans, cfg.clock));
        let results: Arc<Vec<ShardResult>> = Arc::new(
            (0..p)
                .map(|_| Mutex::new((Vec::new(), WorkStats::default())))
                .collect(),
        );
        let queue = JobQueue::new();
        let cfg_shard = *cfg;
        let plan = spans.span(Phase::Plan);
        for s in 0..p {
            let sharded = Arc::clone(&sharded);
            let results = Arc::clone(&results);
            let trace = Arc::clone(&trace);
            let spans = Arc::clone(&spans);
            queue.push(Box::new(move || {
                let _span = spans.span(Phase::ShardSearch);
                let cursors = sharded.cursors(s);
                let (hits, work) = run_nra(cursors, &cfg_shard, &trace);
                *results[s].lock() = (hits, work);
            }));
        }
        drop(plan);
        exec.run(queue);

        // Merge: global top-k over the shards' local top-k lists.
        let merge_span = spans.span(Phase::HeapMerge);
        let mut merged = BoundedTopK::new(cfg.k);
        let mut work = WorkStats::default();
        for cell in results.iter() {
            let (hits, w) = &*cell.lock();
            for h in hits {
                merged.offer(h.score, h.doc);
            }
            work.postings_scanned += w.postings_scanned;
            work.heap_updates += w.heap_updates;
            // Shared-nothing: the total candidate footprint is the
            // *sum* of the shards' peaks.
            work.docmap_peak += w.docmap_peak;
        }
        let hits = finalize_hits(
            merged
                .into_sorted_vec()
                .into_iter()
                .map(|e| SearchHit {
                    doc: e.item,
                    score: e.score,
                })
                .collect(),
            cfg.k,
        );
        drop(merge_span);
        let trace = Arc::into_inner(trace).expect("all shard jobs drained");
        let spans = Arc::into_inner(spans).expect("all shard jobs drained");
        TopKResult {
            hits,
            elapsed: start.elapsed(),
            work,
            trace: trace.into_events(),
            spans: spans.into_spans(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use sparta_exec::DedicatedExecutor;
    use sparta_index::InMemoryIndex;

    fn pseudo_index(n: u32, m: usize, seed: u32) -> Arc<dyn Index> {
        let lists: Vec<Vec<Posting>> = (0..m as u32)
            .map(|t| {
                (0..n)
                    .map(|d| {
                        let x = d
                            .wrapping_mul(2654435761)
                            .wrapping_add(t * 17 + seed)
                            .wrapping_mul(2246822519);
                        Posting::new(d, x % 8_000 + 1)
                    })
                    .collect()
            })
            .collect();
        Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)))
    }

    #[test]
    fn shards_partition_all_postings() {
        let ix = pseudo_index(1000, 2, 1);
        let q = Query::new(vec![0, 1]);
        let sh = ShardedLists::build(&ix, &q, 4);
        assert_eq!(sh.len(), 4);
        let total: usize = (0..4)
            .map(|s| {
                sh.cursors(s)
                    .iter()
                    .map(|c| c.len() as usize)
                    .sum::<usize>()
            })
            .sum();
        assert_eq!(total, 2000);
        // Each shard's lists hold only its residue class and remain
        // score-ordered (checked by SliceScoreCursor's debug assert).
        for s in 0..4 {
            for mut c in sh.cursors(s) {
                while let Some(p) = c.next() {
                    assert_eq!(p.doc as usize % 4, s);
                }
            }
        }
    }

    #[test]
    fn exact_matches_oracle() {
        for threads in [1, 4] {
            let ix = pseudo_index(3000, 3, 2);
            let q = Query::new(vec![0, 1, 2]);
            let cfg = SearchConfig::exact(10);
            let oracle = Oracle::compute(ix.as_ref(), &q, 10);
            let r = SNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(threads));
            assert_eq!(oracle.recall(&r.docs()), 1.0, "threads={threads}");
        }
    }

    #[test]
    fn shared_nothing_scans_more_than_shared() {
        // The headline property: without a shared threshold each shard
        // digs deeper, so total postings scanned exceed sequential NRA.
        let ix = pseudo_index(20_000, 3, 3);
        let q = Query::new(vec![0, 1, 2]);
        let cfg = SearchConfig::exact(100);
        let snra = SNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(8));
        let nra = crate::ta::SeqNra.search(&ix, &q, &cfg, &DedicatedExecutor::new(1));
        assert!(
            snra.work.postings_scanned > nra.work.postings_scanned,
            "sNRA {} ≤ NRA {}",
            snra.work.postings_scanned,
            nra.work.postings_scanned
        );
    }
}
