//! Disk-resident index reader with block-granular, accounted I/O.

use super::format::{self, DictEntry, Meta};
use crate::cursor::{DocCursor, RandomAccess, ScoreCursor};
use crate::iostats::{IoModel, IoStats};
use crate::posting::{BlockMeta, Posting};
use crate::Index;
use sparta_corpus::types::{DocId, TermId};
use std::borrow::Borrow;
use std::fs::File;
use std::io::{self, Read};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

/// Bytes fetched per sequential read (the paper memory-maps files and
/// relies on the OS read-ahead; 64KB models one read-ahead unit).
pub const IO_BLOCK_BYTES: usize = 64 * 1024;

/// A disk-resident [`Index`]. The dictionary and block-max metadata
/// are RAM-resident; posting data is fetched on demand through the
/// [`IoStats`]/[`IoModel`] accounting layer.
pub struct DiskIndex {
    meta: Meta,
    dict: Vec<DictEntry>,
    blocks: Vec<BlockMeta>,
    score_file: File,
    doc_file: File,
    io: IoStats,
    model: IoModel,
}

impl DiskIndex {
    /// Opens an index directory written by
    /// [`super::writer::IndexWriter`].
    pub fn open(dir: impl AsRef<Path>, model: IoModel) -> io::Result<Self> {
        let dir = dir.as_ref();
        let mut meta_file = File::open(dir.join("meta.bin"))?;
        let meta = Meta::read_from(&mut meta_file)?;

        let mut dict_bytes = Vec::new();
        File::open(dir.join("dict.bin"))?.read_to_end(&mut dict_bytes)?;
        if dict_bytes.len() != meta.num_terms as usize * DictEntry::SIZE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "dict.bin size does not match num_terms",
            ));
        }
        let mut dict = Vec::with_capacity(meta.num_terms as usize);
        let mut slice = dict_bytes.as_slice();
        for _ in 0..meta.num_terms {
            dict.push(DictEntry::read_from(&mut slice)?);
        }

        let mut block_bytes = Vec::new();
        File::open(dir.join("blocks.bin"))?.read_to_end(&mut block_bytes)?;
        let blocks = format::decode_blocks(&block_bytes);

        Ok(Self {
            meta,
            dict,
            blocks,
            score_file: File::open(dir.join("score.bin"))?,
            doc_file: File::open(dir.join("doc.bin"))?,
            io: IoStats::new(),
            model,
        })
    }

    /// The latency model in effect.
    pub fn model(&self) -> IoModel {
        self.model
    }

    /// Replaces the latency model (e.g. to switch an opened index
    /// between counting-only and SSD-simulation modes).
    pub fn set_model(&mut self, model: IoModel) {
        self.model = model;
    }

    /// Block size (postings per block-max block).
    pub fn block_size(&self) -> usize {
        self.meta.block_size as usize
    }

    fn entry(&self, term: TermId) -> Option<&DictEntry> {
        self.dict.get(term as usize).filter(|e| e.len > 0)
    }

    fn term_blocks(&self, e: &DictEntry) -> &[BlockMeta] {
        &self.blocks[e.block_off as usize..e.block_off as usize + e.num_blocks as usize]
    }

    /// Reads `buf.len()` bytes at `off` from `file`, charging it as a
    /// sequential fetch when `seq`, else as a random access.
    fn read_at(&self, file: &File, off: u64, buf: &mut [u8], seq: bool) -> io::Result<()> {
        file.read_exact_at(buf, off)?;
        if seq {
            self.io.record_seq(buf.len() as u64);
            self.model.charge_seq();
        } else {
            self.io.record_random(buf.len() as u64);
            self.model.charge_random();
        }
        Ok(())
    }
}

impl Index for DiskIndex {
    fn num_docs(&self) -> u64 {
        self.meta.num_docs
    }

    fn num_terms(&self) -> u32 {
        self.meta.num_terms
    }

    fn doc_freq(&self, term: TermId) -> u64 {
        self.dict.get(term as usize).map_or(0, |e| e.len)
    }

    fn max_score(&self, term: TermId) -> u32 {
        self.dict.get(term as usize).map_or(0, |e| e.max_score)
    }

    fn score_cursor(&self, term: TermId) -> Box<dyn ScoreCursor + '_> {
        Box::new(DiskScoreCursor::new(self, term))
    }

    fn doc_cursor(&self, term: TermId) -> Box<dyn DocCursor + '_> {
        Box::new(DiskDocCursor::new(self, term))
    }

    fn score_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn ScoreCursor> {
        Box::new(DiskScoreCursor::new(self, term))
    }

    fn doc_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn DocCursor> {
        Box::new(DiskDocCursor::new(self, term))
    }

    fn random_access(&self) -> Option<&dyn RandomAccess> {
        Some(self)
    }

    fn io_stats(&self) -> Option<&IoStats> {
        Some(&self.io)
    }
}

impl RandomAccess for DiskIndex {
    /// One lookup = one RAM binary search over block metadata + one
    /// random block fetch, modelling the paper's secondary index (one
    /// I/O request and cache miss per access, §3.2).
    fn term_score(&self, term: TermId, doc: DocId) -> u32 {
        let Some(e) = self.entry(term) else { return 0 };
        let blocks = self.term_blocks(e);
        let bi = blocks.partition_point(|b| b.last_doc < doc);
        if bi >= blocks.len() {
            return 0;
        }
        let bs = self.meta.block_size as usize;
        let start = bi * bs;
        let count = (e.len as usize - start).min(bs);
        let mut buf = vec![0u8; count * 8];
        if self
            .read_at(
                &self.doc_file,
                e.doc_off + (start * 8) as u64,
                &mut buf,
                false,
            )
            .is_err()
        {
            return 0;
        }
        let mut postings = Vec::new();
        format::decode_postings(&buf, &mut postings);
        match postings.binary_search_by_key(&doc, |p| p.doc) {
            Ok(i) => postings[i].score,
            Err(_) => 0,
        }
    }
}

/// Sequential score-order cursor reading [`IO_BLOCK_BYTES`] at a time.
/// Generic over the index holder: `&DiskIndex` for borrowed cursors,
/// `Arc<DiskIndex>` for owning cursors movable into `'static` jobs.
struct DiskScoreCursor<R> {
    ix: R,
    entry: DictEntry,
    buf: Vec<Posting>,
    /// Absolute posting index of `buf[0]`.
    buf_start: u64,
    /// Absolute posting index of the next posting to return.
    pos: u64,
    bytes: Vec<u8>,
}

impl<R: Borrow<DiskIndex>> DiskScoreCursor<R> {
    fn new(ix: R, term: TermId) -> Self {
        let entry = ix
            .borrow()
            .dict
            .get(term as usize)
            .copied()
            .unwrap_or_default();
        Self {
            ix,
            entry,
            buf: Vec::new(),
            buf_start: 0,
            pos: 0,
            bytes: Vec::new(),
        }
    }

    fn fill(&mut self) -> bool {
        if self.pos >= self.entry.len {
            return false;
        }
        let count = ((self.entry.len - self.pos) * 8).min(IO_BLOCK_BYTES as u64) as usize;
        self.bytes.resize(count, 0);
        let off = self.entry.score_off + self.pos * 8;
        let ix = self.ix.borrow();
        if ix
            .read_at(&ix.score_file, off, &mut self.bytes, true)
            .is_err()
        {
            return false;
        }
        format::decode_postings(&self.bytes, &mut self.buf);
        self.buf_start = self.pos;
        true
    }
}

impl<R: Borrow<DiskIndex> + Send> ScoreCursor for DiskScoreCursor<R> {
    fn next(&mut self) -> Option<Posting> {
        if self.pos >= self.entry.len {
            return None;
        }
        let rel = (self.pos - self.buf_start) as usize;
        if (self.buf.is_empty() || rel >= self.buf.len()) && !self.fill() {
            return None;
        }
        let rel = (self.pos - self.buf_start) as usize;
        let p = self.buf[rel];
        self.pos += 1;
        Some(p)
    }

    fn remaining(&self) -> u64 {
        self.entry.len - self.pos
    }

    fn len(&self) -> u64 {
        self.entry.len
    }
}

/// Doc-order cursor that loads one block-max block at a time, using
/// the RAM block metadata for seeks and BMW-style block skips.
struct DiskDocCursor<R> {
    ix: R,
    entry: DictEntry,
    /// Local (term-relative) index of the loaded block; usize::MAX if
    /// nothing is loaded yet.
    cur_block: usize,
    block: Vec<Posting>,
    /// Position within `block`.
    rel: usize,
    /// Exhausted flag.
    done: bool,
    /// File offset a sequential continuation would read next.
    next_seq_off: u64,
    bytes: Vec<u8>,
}

impl<R: Borrow<DiskIndex>> DiskDocCursor<R> {
    fn new(ix: R, term: TermId) -> Self {
        let entry = ix
            .borrow()
            .dict
            .get(term as usize)
            .copied()
            .unwrap_or_default();
        let done = entry.len == 0;
        let mut c = Self {
            ix,
            entry,
            cur_block: usize::MAX,
            block: Vec::new(),
            rel: 0,
            done,
            next_seq_off: entry.doc_off,
            bytes: Vec::new(),
        };
        if !c.done {
            c.load_block(0);
        }
        c
    }

    fn blocks(&self) -> &[BlockMeta] {
        let s = self.entry.block_off as usize;
        &self.ix.borrow().blocks[s..s + self.entry.num_blocks as usize]
    }

    fn load_block(&mut self, bi: usize) {
        if bi >= self.entry.num_blocks as usize {
            self.done = true;
            self.block.clear();
            return;
        }
        let bs = self.ix.borrow().meta.block_size as usize;
        let start = bi * bs;
        let count = (self.entry.len as usize - start).min(bs);
        let off = self.entry.doc_off + (start * 8) as u64;
        self.bytes.resize(count * 8, 0);
        let seq = off == self.next_seq_off;
        let ok = {
            let ix = self.ix.borrow();
            ix.read_at(&ix.doc_file, off, &mut self.bytes, seq).is_ok()
        };
        if !ok {
            self.done = true;
            return;
        }
        self.next_seq_off = off + (count * 8) as u64;
        format::decode_postings(&self.bytes, &mut self.block);
        self.cur_block = bi;
        self.rel = 0;
    }
}

impl<R: Borrow<DiskIndex> + Send> DocCursor for DiskDocCursor<R> {
    fn doc(&self) -> Option<DocId> {
        if self.done {
            None
        } else {
            self.block.get(self.rel).map(|p| p.doc)
        }
    }

    fn score(&self) -> u32 {
        if self.done {
            0
        } else {
            self.block.get(self.rel).map_or(0, |p| p.score)
        }
    }

    fn advance(&mut self) -> Option<DocId> {
        if self.done {
            return None;
        }
        self.rel += 1;
        if self.rel >= self.block.len() {
            let next = self.cur_block + 1;
            self.load_block(next);
        }
        self.doc()
    }

    fn seek(&mut self, target: DocId) -> Option<DocId> {
        if self.done {
            return None;
        }
        if let Some(d) = self.doc() {
            if d >= target {
                return Some(d);
            }
        }
        let (bi, nblocks) = {
            let blocks = self.blocks();
            (
                self.cur_block + blocks[self.cur_block..].partition_point(|b| b.last_doc < target),
                blocks.len(),
            )
        };
        if bi >= nblocks {
            self.done = true;
            return None;
        }
        if bi != self.cur_block {
            self.load_block(bi);
            if self.done {
                return None;
            }
        }
        self.rel += self.block[self.rel..].partition_point(|p| p.doc < target);
        debug_assert!(self.rel < self.block.len());
        self.doc()
    }

    fn block_at(&self, target: DocId) -> Option<(DocId, u32)> {
        if self.done {
            return None;
        }
        let blocks = self.blocks();
        let bi = self.cur_block + blocks[self.cur_block..].partition_point(|b| b.last_doc < target);
        blocks.get(bi).map(|b| (b.last_doc, b.max_score))
    }

    fn block_max_score(&self) -> u32 {
        if self.done {
            0
        } else {
            self.blocks()[self.cur_block].max_score
        }
    }

    fn block_last_doc(&self) -> Option<DocId> {
        if self.done {
            None
        } else {
            Some(self.blocks()[self.cur_block].last_doc)
        }
    }

    fn skip_block(&mut self) -> Option<DocId> {
        if self.done {
            return None;
        }
        let next = self.cur_block + 1;
        self.load_block(next);
        self.doc()
    }

    fn max_score(&self) -> u32 {
        self.entry.max_score
    }

    fn len(&self) -> u64 {
        self.entry.len
    }
}

/// Loads the versioned compressed section (`compressed.bin`) of an
/// index directory written with
/// [`IndexKind::Compressed`](crate::builder::IndexKind::Compressed)
/// into a RAM-resident [`CompressedIndex`](crate::CompressedIndex).
///
/// Version-1 directories have no such section; opening them raises
/// `NotFound`, and callers fall back to [`DiskIndex`] / a raw build.
pub fn load_compressed(dir: impl AsRef<Path>) -> io::Result<crate::CompressedIndex> {
    let dir = dir.as_ref();
    let mut f = std::io::BufReader::new(File::open(dir.join("compressed.bin"))?);
    let (num_docs, num_terms, block_size) = format::read_compressed_header(&mut f)?;
    let mut terms = Vec::with_capacity(num_terms as usize);
    for _ in 0..num_terms {
        terms.push(format::decode_compressed_term(&mut f, block_size)?);
    }
    let mut rest = [0u8; 1];
    if f.read(&mut rest)? != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "trailing bytes after last term",
        ));
    }
    Ok(crate::CompressedIndex::from_parts(
        terms,
        num_docs,
        block_size as usize,
    ))
}
