//! Binary layout constants and (de)serialization of fixed-width records.

use crate::posting::{BlockMeta, Posting};
use std::io::{self, Read, Write};

/// File magic at the start of `meta.bin`.
pub const MAGIC: &[u8; 8] = b"SPARTAIX";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Contents of `meta.bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Format version.
    pub version: u32,
    /// Number of documents in the corpus.
    pub num_docs: u64,
    /// Number of terms (dictionary entries).
    pub num_terms: u32,
    /// Postings per block-max block.
    pub block_size: u32,
}

impl Meta {
    /// Serializes to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.version.to_le_bytes())?;
        w.write_all(&self.num_docs.to_le_bytes())?;
        w.write_all(&self.num_terms.to_le_bytes())?;
        w.write_all(&self.block_size.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes from `r`, validating magic and version.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a Sparta index (bad magic)",
            ));
        }
        let version = read_u32(r)?;
        if version != FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported index format version {version}"),
            ));
        }
        Ok(Self {
            version,
            num_docs: read_u64(r)?,
            num_terms: read_u32(r)?,
            block_size: read_u32(r)?,
        })
    }
}

/// One `dict.bin` record (40 bytes): where a term's data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictEntry {
    /// Byte offset of the score-ordered list in `score.bin`.
    pub score_off: u64,
    /// Byte offset of the doc-ordered list in `doc.bin`.
    pub doc_off: u64,
    /// Posting count.
    pub len: u64,
    /// Index of the first block in the in-RAM block array.
    pub block_off: u64,
    /// Number of block-max blocks.
    pub num_blocks: u32,
    /// List-wide maximum score.
    pub max_score: u32,
}

impl DictEntry {
    /// Encoded size in bytes.
    pub const SIZE: usize = 40;

    /// Serializes to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.score_off.to_le_bytes())?;
        w.write_all(&self.doc_off.to_le_bytes())?;
        w.write_all(&self.len.to_le_bytes())?;
        w.write_all(&self.block_off.to_le_bytes())?;
        w.write_all(&self.num_blocks.to_le_bytes())?;
        w.write_all(&self.max_score.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes from `r`.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        Ok(Self {
            score_off: read_u64(r)?,
            doc_off: read_u64(r)?,
            len: read_u64(r)?,
            block_off: read_u64(r)?,
            num_blocks: read_u32(r)?,
            max_score: read_u32(r)?,
        })
    }
}

/// Encodes a posting slice as little-endian bytes.
pub fn encode_postings(postings: &[Posting], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(postings.len() * 8);
    for p in postings {
        out.extend_from_slice(&p.doc.to_le_bytes());
        out.extend_from_slice(&p.score.to_le_bytes());
    }
}

/// Decodes postings from bytes (must be a multiple of 8 bytes).
pub fn decode_postings(bytes: &[u8], out: &mut Vec<Posting>) {
    debug_assert_eq!(bytes.len() % 8, 0);
    out.clear();
    out.reserve(bytes.len() / 8);
    for c in bytes.chunks_exact(8) {
        out.push(Posting {
            doc: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            score: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
        });
    }
}

/// Decodes a single posting from an 8-byte record.
pub fn decode_posting(c: &[u8]) -> Posting {
    Posting {
        doc: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
        score: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
    }
}

/// Encodes block metadata.
pub fn encode_blocks(blocks: &[BlockMeta], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(blocks.len() * 8);
    for b in blocks {
        out.extend_from_slice(&b.last_doc.to_le_bytes());
        out.extend_from_slice(&b.max_score.to_le_bytes());
    }
}

/// Decodes block metadata.
pub fn decode_blocks(bytes: &[u8]) -> Vec<BlockMeta> {
    debug_assert_eq!(bytes.len() % 8, 0);
    bytes
        .chunks_exact(8)
        .map(|c| BlockMeta {
            last_doc: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            max_score: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
        })
        .collect()
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trip() {
        let m = Meta {
            version: FORMAT_VERSION,
            num_docs: 1234567,
            num_terms: 89,
            block_size: 64,
        };
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let got = Meta::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn meta_rejects_bad_magic() {
        let mut buf = Vec::new();
        Meta {
            version: FORMAT_VERSION,
            num_docs: 1,
            num_terms: 1,
            block_size: 64,
        }
        .write_to(&mut buf)
        .unwrap();
        buf[3] = b'X';
        assert!(Meta::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn meta_rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&64u32.to_le_bytes());
        assert!(Meta::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn dict_entry_round_trip() {
        let e = DictEntry {
            score_off: 100,
            doc_off: 200,
            len: 37,
            block_off: 5,
            num_blocks: 1,
            max_score: 999,
        };
        let mut buf = Vec::new();
        e.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), DictEntry::SIZE);
        assert_eq!(DictEntry::read_from(&mut buf.as_slice()).unwrap(), e);
    }

    #[test]
    fn postings_round_trip() {
        let ps: Vec<Posting> = (0..100u32).map(|i| Posting::new(i * 3, i * 7)).collect();
        let mut bytes = Vec::new();
        encode_postings(&ps, &mut bytes);
        assert_eq!(bytes.len(), 800);
        let mut got = Vec::new();
        decode_postings(&bytes, &mut got);
        assert_eq!(got, ps);
        assert_eq!(decode_posting(&bytes[8..16]), ps[1]);
    }

    #[test]
    fn blocks_round_trip() {
        let bs = vec![
            BlockMeta {
                last_doc: 63,
                max_score: 12,
            },
            BlockMeta {
                last_doc: 127,
                max_score: 99,
            },
        ];
        let mut bytes = Vec::new();
        encode_blocks(&bs, &mut bytes);
        assert_eq!(decode_blocks(&bytes), bs);
    }
}
