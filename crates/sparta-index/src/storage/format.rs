//! Binary layout constants and (de)serialization of fixed-width records.

use crate::compress::{read_varint, write_varint};
use crate::compressed::{CompressedTermData, PlaneMeta, ScoreQuantizer, MAX_BLOCK};
use crate::posting::{BlockMeta, Posting};
use std::io::{self, Read, Write};

/// File magic at the start of `meta.bin`.
pub const MAGIC: &[u8; 8] = b"SPARTAIX";

/// Current format version. Version 2 added the optional compressed
/// section (`compressed.bin`); version-1 directories (no such file)
/// remain readable.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest format version the reader accepts.
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Magic at the start of the compressed section (`compressed.bin`).
pub const COMPRESSED_MAGIC: &[u8; 8] = b"SPARTACP";

/// Version of the compressed section's own layout.
pub const COMPRESSED_SECTION_VERSION: u32 = 1;

/// Contents of `meta.bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meta {
    /// Format version.
    pub version: u32,
    /// Number of documents in the corpus.
    pub num_docs: u64,
    /// Number of terms (dictionary entries).
    pub num_terms: u32,
    /// Postings per block-max block.
    pub block_size: u32,
}

impl Meta {
    /// Serializes to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&self.version.to_le_bytes())?;
        w.write_all(&self.num_docs.to_le_bytes())?;
        w.write_all(&self.num_terms.to_le_bytes())?;
        w.write_all(&self.block_size.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes from `r`, validating magic and version.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a Sparta index (bad magic)",
            ));
        }
        let version = read_u32(r)?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported index format version {version}"),
            ));
        }
        Ok(Self {
            version,
            num_docs: read_u64(r)?,
            num_terms: read_u32(r)?,
            block_size: read_u32(r)?,
        })
    }
}

/// One `dict.bin` record (40 bytes): where a term's data lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DictEntry {
    /// Byte offset of the score-ordered list in `score.bin`.
    pub score_off: u64,
    /// Byte offset of the doc-ordered list in `doc.bin`.
    pub doc_off: u64,
    /// Posting count.
    pub len: u64,
    /// Index of the first block in the in-RAM block array.
    pub block_off: u64,
    /// Number of block-max blocks.
    pub num_blocks: u32,
    /// List-wide maximum score.
    pub max_score: u32,
}

impl DictEntry {
    /// Encoded size in bytes.
    pub const SIZE: usize = 40;

    /// Serializes to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.score_off.to_le_bytes())?;
        w.write_all(&self.doc_off.to_le_bytes())?;
        w.write_all(&self.len.to_le_bytes())?;
        w.write_all(&self.block_off.to_le_bytes())?;
        w.write_all(&self.num_blocks.to_le_bytes())?;
        w.write_all(&self.max_score.to_le_bytes())?;
        Ok(())
    }

    /// Deserializes from `r`.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        Ok(Self {
            score_off: read_u64(r)?,
            doc_off: read_u64(r)?,
            len: read_u64(r)?,
            block_off: read_u64(r)?,
            num_blocks: read_u32(r)?,
            max_score: read_u32(r)?,
        })
    }
}

/// Encodes a posting slice as little-endian bytes.
pub fn encode_postings(postings: &[Posting], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(postings.len() * 8);
    for p in postings {
        out.extend_from_slice(&p.doc.to_le_bytes());
        out.extend_from_slice(&p.score.to_le_bytes());
    }
}

/// Decodes postings from bytes (must be a multiple of 8 bytes).
pub fn decode_postings(bytes: &[u8], out: &mut Vec<Posting>) {
    debug_assert_eq!(bytes.len() % 8, 0);
    out.clear();
    out.reserve(bytes.len() / 8);
    for c in bytes.chunks_exact(8) {
        out.push(Posting {
            doc: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            score: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
        });
    }
}

/// Decodes a single posting from an 8-byte record.
pub fn decode_posting(c: &[u8]) -> Posting {
    Posting {
        doc: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
        score: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
    }
}

/// Encodes block metadata.
pub fn encode_blocks(blocks: &[BlockMeta], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(blocks.len() * 8);
    for b in blocks {
        out.extend_from_slice(&b.last_doc.to_le_bytes());
        out.extend_from_slice(&b.max_score.to_le_bytes());
    }
}

/// Decodes block metadata.
pub fn decode_blocks(bytes: &[u8]) -> Vec<BlockMeta> {
    debug_assert_eq!(bytes.len() % 8, 0);
    bytes
        .chunks_exact(8)
        .map(|c| BlockMeta {
            last_doc: u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
            max_score: u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
        })
        .collect()
}

/// Writes the compressed-section header.
pub fn write_compressed_header<W: Write>(
    w: &mut W,
    num_docs: u64,
    num_terms: u32,
    block_size: u32,
) -> io::Result<()> {
    w.write_all(COMPRESSED_MAGIC)?;
    w.write_all(&COMPRESSED_SECTION_VERSION.to_le_bytes())?;
    w.write_all(&num_docs.to_le_bytes())?;
    w.write_all(&num_terms.to_le_bytes())?;
    w.write_all(&block_size.to_le_bytes())?;
    Ok(())
}

/// Reads and validates the compressed-section header, returning
/// `(num_docs, num_terms, block_size)`.
pub fn read_compressed_header<R: Read>(r: &mut R) -> io::Result<(u64, u32, u32)> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != COMPRESSED_MAGIC {
        return Err(bad("not a compressed posting section (bad magic)"));
    }
    let version = read_u32(r)?;
    if version != COMPRESSED_SECTION_VERSION {
        return Err(bad(format!(
            "unsupported compressed section version {version}"
        )));
    }
    let num_docs = read_u64(r)?;
    let num_terms = read_u32(r)?;
    let block_size = read_u32(r)?;
    if block_size == 0 || block_size as usize > MAX_BLOCK {
        return Err(bad(format!("invalid block size {block_size}")));
    }
    Ok((num_docs, num_terms, block_size))
}

/// Serializes one term's compressed data. The codebook is written as
/// varint deltas (it is strictly ascending); packed planes are raw
/// little-endian words.
pub fn encode_compressed_term(td: &CompressedTermData, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&td.len.to_le_bytes());
    if td.len == 0 {
        return;
    }
    out.extend_from_slice(&td.max_score.to_le_bytes());
    out.push(td.sidx_bits);
    out.push(td.doc_raw_bits);
    let q = td.quant.unwrap_or(ScoreQuantizer { min: 0, scale: 1 });
    out.extend_from_slice(&q.min.to_le_bytes());
    out.extend_from_slice(&q.scale.to_le_bytes());

    out.extend_from_slice(&(td.dict.len() as u32).to_le_bytes());
    let mut prev = 0u32;
    for (i, &v) in td.dict.iter().enumerate() {
        write_varint(if i == 0 { v } else { v - prev - 1 }, out);
        prev = v;
    }

    out.extend_from_slice(&(td.blocks.len() as u32).to_le_bytes());
    for (bi, b) in td.blocks.iter().enumerate() {
        out.extend_from_slice(&b.last_doc.to_le_bytes());
        out.extend_from_slice(&b.max_score.to_le_bytes());
        out.push(td.qmax[bi]);
        out.extend_from_slice(&td.doc_meta[bi].off.to_le_bytes());
        out.push(td.doc_meta[bi].bits);
        out.extend_from_slice(&td.score_meta[bi].off.to_le_bytes());
        out.push(td.score_meta[bi].bits);
    }

    out.extend_from_slice(&(td.words.len() as u32).to_le_bytes());
    for &w in &td.words {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Deserializes one term written by [`encode_compressed_term`].
pub fn decode_compressed_term<R: Read>(
    r: &mut R,
    block_size: u32,
) -> io::Result<CompressedTermData> {
    let len = read_u32(r)?;
    if len == 0 {
        return Ok(CompressedTermData {
            block_size,
            ..CompressedTermData::default()
        });
    }
    let max_score = read_u32(r)?;
    let mut widths = [0u8; 2];
    r.read_exact(&mut widths)?;
    let (sidx_bits, doc_raw_bits) = (widths[0], widths[1]);
    if sidx_bits > 32 || doc_raw_bits > 32 {
        return Err(bad("invalid packed field width"));
    }
    let quant = ScoreQuantizer {
        min: read_u32(r)?,
        scale: read_u32(r)?,
    };
    if quant.scale == 0 {
        return Err(bad("invalid quantizer scale"));
    }

    let dict_len = read_u32(r)? as usize;
    if dict_len == 0 || dict_len > len as usize {
        return Err(bad("invalid codebook size"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    let mut varint_buf = [0u8; 5];
    let mut prev = 0u32;
    for i in 0..dict_len {
        let v = read_varint_from(r, &mut varint_buf)?;
        let v = if i == 0 {
            v
        } else {
            prev.checked_add(v)
                .and_then(|x| x.checked_add(1))
                .ok_or_else(|| bad("codebook delta overflow"))?
        };
        dict.push(v);
        prev = v;
    }
    if dict.last() != Some(&max_score) {
        return Err(bad("codebook does not end at max score"));
    }

    let num_blocks = read_u32(r)? as usize;
    if num_blocks != (len as usize).div_ceil(block_size as usize) {
        return Err(bad("block count does not match posting count"));
    }
    let mut blocks = Vec::with_capacity(num_blocks);
    let mut qmax = Vec::with_capacity(num_blocks);
    let mut doc_meta = Vec::with_capacity(num_blocks);
    let mut score_meta = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let last_doc = read_u32(r)?;
        let bmax = read_u32(r)?;
        let mut b1 = [0u8; 1];
        r.read_exact(&mut b1)?;
        qmax.push(b1[0]);
        let doc_off = read_u32(r)?;
        r.read_exact(&mut b1)?;
        let doc_bits = b1[0];
        let score_off = read_u32(r)?;
        r.read_exact(&mut b1)?;
        let score_bits = b1[0];
        if doc_bits > 32 || score_bits > 32 {
            return Err(bad("invalid packed field width"));
        }
        blocks.push(BlockMeta {
            last_doc,
            max_score: bmax,
        });
        doc_meta.push(PlaneMeta {
            off: doc_off,
            bits: doc_bits,
        });
        score_meta.push(PlaneMeta {
            off: score_off,
            bits: score_bits,
        });
    }

    let num_words = read_u32(r)? as usize;
    if num_words == 0 {
        return Err(bad("missing packed words"));
    }
    let mut words = Vec::with_capacity(num_words);
    let mut w8 = [0u8; 8];
    for _ in 0..num_words {
        r.read_exact(&mut w8)?;
        words.push(u64::from_le_bytes(w8));
    }
    // Every plane offset must leave room for its block's data plus the
    // decoder's one-word lookahead.
    let word_bits = (num_words as u64 - 1) * 64;
    for (bi, (dm, sm)) in doc_meta.iter().zip(score_meta.iter()).enumerate() {
        let n = (len as u64 - bi as u64 * u64::from(block_size)).min(u64::from(block_size));
        let doc_end = u64::from(dm.off) + n * (u64::from(dm.bits) + u64::from(sidx_bits));
        let score_end = u64::from(sm.off) + n * (u64::from(doc_raw_bits) + u64::from(sm.bits));
        if doc_end > word_bits || score_end > word_bits {
            return Err(bad("plane offset out of bounds"));
        }
    }

    Ok(CompressedTermData {
        len,
        max_score,
        block_size,
        dict,
        blocks,
        quant: Some(quant),
        qmax,
        sidx_bits,
        doc_raw_bits,
        doc_meta,
        score_meta,
        words,
    })
}

fn read_varint_from<R: Read>(r: &mut R, scratch: &mut [u8; 5]) -> io::Result<u32> {
    for i in 0..5 {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        scratch[i] = b[0];
        if b[0] & 0x80 == 0 {
            return read_varint(&scratch[..=i])
                .map(|(v, _)| v)
                .ok_or_else(|| bad("malformed varint"));
        }
    }
    Err(bad("malformed varint"))
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trip() {
        let m = Meta {
            version: FORMAT_VERSION,
            num_docs: 1234567,
            num_terms: 89,
            block_size: 64,
        };
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let got = Meta::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(got, m);
    }

    #[test]
    fn meta_rejects_bad_magic() {
        let mut buf = Vec::new();
        Meta {
            version: FORMAT_VERSION,
            num_docs: 1,
            num_terms: 1,
            block_size: 64,
        }
        .write_to(&mut buf)
        .unwrap();
        buf[3] = b'X';
        assert!(Meta::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn meta_rejects_future_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&64u32.to_le_bytes());
        assert!(Meta::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn dict_entry_round_trip() {
        let e = DictEntry {
            score_off: 100,
            doc_off: 200,
            len: 37,
            block_off: 5,
            num_blocks: 1,
            max_score: 999,
        };
        let mut buf = Vec::new();
        e.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), DictEntry::SIZE);
        assert_eq!(DictEntry::read_from(&mut buf.as_slice()).unwrap(), e);
    }

    #[test]
    fn compressed_term_round_trips() {
        let ps: Vec<Posting> = (0..300u32)
            .map(|i| Posting::new(i * 5 + i % 4, i.wrapping_mul(2_654_435_761) % 900_000 + 1))
            .collect();
        let td = CompressedTermData::from_postings(ps, 64);
        let mut buf = Vec::new();
        encode_compressed_term(&td, &mut buf);
        let got = decode_compressed_term(&mut buf.as_slice(), 64).unwrap();
        assert_eq!(got.len(), td.len());
        assert_eq!(got.max_score(), td.max_score());
        assert_eq!(got.blocks(), td.blocks());
        assert_eq!(got.quantizer(), td.quantizer());
        let mut docs = [0u32; crate::compressed::MAX_BLOCK];
        let mut scores = [0u32; crate::compressed::MAX_BLOCK];
        let mut docs2 = [0u32; crate::compressed::MAX_BLOCK];
        let mut scores2 = [0u32; crate::compressed::MAX_BLOCK];
        for bi in 0..td.blocks().len() {
            let n = td.decode_doc_block(bi, &mut docs, &mut scores);
            let m = got.decode_doc_block(bi, &mut docs2, &mut scores2);
            assert_eq!(n, m);
            assert_eq!(docs[..n], docs2[..n]);
            assert_eq!(scores[..n], scores2[..n]);
        }
    }

    #[test]
    fn compressed_term_empty_round_trips() {
        let td = CompressedTermData::from_postings(Vec::new(), 64);
        let mut buf = Vec::new();
        encode_compressed_term(&td, &mut buf);
        assert_eq!(buf.len(), 4, "empty terms cost one length field");
        let got = decode_compressed_term(&mut buf.as_slice(), 64).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn compressed_term_rejects_dangling_plane_offset() {
        let ps: Vec<Posting> = (0..100u32).map(|i| Posting::new(i * 3, i + 1)).collect();
        let mut td = CompressedTermData::from_postings(ps, 64);
        td.doc_meta[1].off = u32::MAX;
        let mut buf = Vec::new();
        encode_compressed_term(&td, &mut buf);
        let err = decode_compressed_term(&mut buf.as_slice(), 64).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn compressed_header_round_trips_and_validates() {
        let mut buf = Vec::new();
        write_compressed_header(&mut buf, 1000, 50, 64).unwrap();
        assert_eq!(
            read_compressed_header(&mut buf.as_slice()).unwrap(),
            (1000, 50, 64)
        );
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_compressed_header(&mut bad.as_slice()).is_err());
        // Oversized block size.
        let mut big = Vec::new();
        write_compressed_header(&mut big, 1000, 50, MAX_BLOCK as u32 + 1).unwrap();
        assert!(read_compressed_header(&mut big.as_slice()).is_err());
    }

    #[test]
    fn postings_round_trip() {
        let ps: Vec<Posting> = (0..100u32).map(|i| Posting::new(i * 3, i * 7)).collect();
        let mut bytes = Vec::new();
        encode_postings(&ps, &mut bytes);
        assert_eq!(bytes.len(), 800);
        let mut got = Vec::new();
        decode_postings(&bytes, &mut got);
        assert_eq!(got, ps);
        assert_eq!(decode_posting(&bytes[8..16]), ps[1]);
    }

    #[test]
    fn blocks_round_trip() {
        let bs = vec![
            BlockMeta {
                last_doc: 63,
                max_score: 12,
            },
            BlockMeta {
                last_doc: 127,
                max_score: 99,
            },
        ];
        let mut bytes = Vec::new();
        encode_blocks(&bs, &mut bytes);
        assert_eq!(decode_blocks(&bytes), bs);
    }
}
