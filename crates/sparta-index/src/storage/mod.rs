//! Uncompressed binary on-disk index format.
//!
//! "The appropriate index … is pre-built offline and stored on disk
//! uncompressed as a collection of binary files" (§5.1). We follow
//! that design and deliberately skip compression: "given
//! state-of-the-art compression techniques, the impact of
//! decompression on end-to-end performance is marginal" (§5,
//! citing Lin & Trotman 2017).
//!
//! Layout (one directory per index, all integers little-endian):
//!
//! ```text
//! meta.bin    magic "SPARTAIX", version, num_docs, num_terms, block_size
//! dict.bin    per term: offsets/lengths into the data files + max score
//! score.bin   all score-ordered posting lists, concatenated
//! doc.bin     all doc-ordered posting lists, concatenated
//! blocks.bin  block-max metadata for doc.bin
//! ```
//!
//! The dictionary and block metadata are small (40 bytes/term and
//! 8 bytes per 64 postings) and are held in RAM by the reader, like
//! any production engine; posting data is fetched in fixed-size blocks
//! through the [`crate::iostats`] layer.
//!
//! Format version 2 adds an *optional* versioned compressed section:
//!
//! ```text
//! compressed.bin  magic "SPARTACP", section version, num_docs,
//!                 num_terms, block_size, then one
//!                 [`crate::CompressedTermData`] record per term
//!                 (see [`format::encode_compressed_term`])
//! ```
//!
//! written when the index is built with
//! [`crate::builder::IndexKind::Compressed`] and loaded whole into RAM
//! by [`reader::load_compressed`]. Version-1 directories (no such
//! file) remain readable by [`DiskIndex`].

pub mod format;
pub mod reader;
pub mod writer;

pub use format::{DictEntry, Meta, FORMAT_VERSION, MAGIC, MIN_FORMAT_VERSION};
pub use reader::{load_compressed, DiskIndex};
pub use writer::IndexWriter;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InMemoryIndex;
    use crate::posting::Posting;
    use crate::{Index, IoModel};
    use sparta_corpus::types::TermId;

    fn sample_lists() -> Vec<Vec<Posting>> {
        vec![
            (0..300u32).map(|i| Posting::new(3 * i, 1000 - i)).collect(),
            (0..40u32)
                .map(|i| Posting::new(7 * i, 10 + (i * 13) % 90))
                .collect(),
            Vec::new(),
            vec![Posting::new(5, 42)],
        ]
    }

    fn write_sample(dir: &std::path::Path) {
        let lists = sample_lists();
        let mut w = IndexWriter::create(dir, 900, lists.len() as u32, 64).unwrap();
        for l in &lists {
            w.add_term(l.clone()).unwrap();
        }
        w.finish().unwrap();
    }

    #[test]
    fn round_trip_matches_memory_index() {
        let dir = tempdir("round_trip");
        write_sample(&dir);
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        let mem = InMemoryIndex::from_term_postings(sample_lists(), 900);

        assert_eq!(disk.num_docs(), 900);
        assert_eq!(disk.num_terms(), 4);
        for t in 0..4 as TermId {
            assert_eq!(disk.doc_freq(t), mem.doc_freq(t), "df term {t}");
            assert_eq!(disk.max_score(t), mem.max_score(t), "max term {t}");
            // Score order identical.
            let mut a = disk.score_cursor(t);
            let mut b = mem.score_cursor(t);
            loop {
                let (x, y) = (a.next(), b.next());
                assert_eq!(x, y, "score cursor term {t}");
                if x.is_none() {
                    break;
                }
            }
            // Doc order identical.
            let mut a = disk.doc_cursor(t);
            let mut b = mem.doc_cursor(t);
            loop {
                let (x, y) = (a.doc(), b.doc());
                assert_eq!(x, y, "doc cursor term {t}");
                assert_eq!(a.score(), b.score());
                if x.is_none() {
                    break;
                }
                a.advance();
                b.advance();
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_seek_and_blockmax_match_memory() {
        let dir = tempdir("seek");
        write_sample(&dir);
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        let mem = InMemoryIndex::from_term_postings(sample_lists(), 900);
        let mut a = disk.doc_cursor(0);
        let mut b = mem.doc_cursor(0);
        for target in [0u32, 5, 100, 101, 450, 897, 898] {
            assert_eq!(a.seek(target), b.seek(target), "seek {target}");
            assert_eq!(a.block_max_score(), b.block_max_score());
            assert_eq!(a.block_last_doc(), b.block_last_doc());
        }
        assert_eq!(a.skip_block(), b.skip_block());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disk_random_access_matches_memory() {
        let dir = tempdir("ra");
        write_sample(&dir);
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        let mem = InMemoryIndex::from_term_postings(sample_lists(), 900);
        let dra = disk.random_access().unwrap();
        let mra = mem.random_access().unwrap();
        for t in 0..4 as TermId {
            for d in (0..900u32).step_by(17) {
                assert_eq!(dra.term_score(t, d), mra.term_score(t, d), "t={t} d={d}");
            }
        }
        // Random accesses were counted.
        assert!(disk.io_stats().unwrap().random_accesses() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_stats_count_sequential_blocks() {
        let dir = tempdir("iostats");
        write_sample(&dir);
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        let stats = disk.io_stats().unwrap();
        stats.reset();
        let mut c = disk.score_cursor(0);
        while c.next().is_some() {}
        let (seq, _, bytes) = stats.snapshot();
        assert!(seq >= 1);
        assert_eq!(bytes, 300 * 8, "read exactly the list bytes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_corrupt_magic() {
        let dir = tempdir("corrupt");
        write_sample(&dir);
        let meta = dir.join("meta.bin");
        let mut bytes = std::fs::read(&meta).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&meta, bytes).unwrap();
        assert!(DiskIndex::open(&dir, IoModel::free()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_section_round_trips() {
        use crate::builder::IndexKind;
        use crate::compressed::CompressedIndex;
        let dir = tempdir("compressed_rt");
        let lists = sample_lists();
        let mut w =
            IndexWriter::create_with_kind(&dir, 900, lists.len() as u32, 64, IndexKind::Compressed)
                .unwrap();
        for l in &lists {
            w.add_term(l.clone()).unwrap();
        }
        w.finish().unwrap();

        // The raw planes are still a valid v2 index.
        assert!(DiskIndex::open(&dir, IoModel::free()).is_ok());

        let loaded = load_compressed(&dir).unwrap();
        let built = CompressedIndex::from_term_postings(sample_lists(), 900);
        assert_eq!(loaded.num_docs(), built.num_docs());
        assert_eq!(loaded.num_terms(), built.num_terms());
        for t in 0..loaded.num_terms() {
            assert_eq!(loaded.doc_freq(t), built.doc_freq(t));
            assert_eq!(loaded.max_score(t), built.max_score(t));
            let mut a = loaded.score_cursor(t);
            let mut b = built.score_cursor(t);
            loop {
                let (x, y) = (a.next(), b.next());
                assert_eq!(x, y, "term {t}");
                if x.is_none() {
                    break;
                }
            }
            let mut a = loaded.doc_cursor(t);
            let mut b = built.doc_cursor(t);
            loop {
                assert_eq!(a.doc(), b.doc(), "term {t}");
                assert_eq!(a.block_max_score(), b.block_max_score(), "term {t}");
                if a.advance().is_none() {
                    b.advance();
                    break;
                }
                b.advance();
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_kind_writes_no_compressed_section() {
        let dir = tempdir("raw_kind");
        write_sample(&dir);
        assert!(!dir.join("compressed.bin").exists());
        let err = reader::load_compressed(&dir).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_section_rejects_corruption() {
        use crate::builder::IndexKind;
        let dir = tempdir("compressed_corrupt");
        let lists = sample_lists();
        let mut w =
            IndexWriter::create_with_kind(&dir, 900, lists.len() as u32, 64, IndexKind::Compressed)
                .unwrap();
        for l in &lists {
            w.add_term(l.clone()).unwrap();
        }
        w.finish().unwrap();
        let path = dir.join("compressed.bin");
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(load_compressed(&dir).is_err());

        // Truncation mid-term.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(load_compressed(&dir).is_err());

        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        std::fs::write(&path, &long).unwrap();
        assert!(load_compressed(&dir).is_err());

        std::fs::write(&path, &good).unwrap();
        assert!(load_compressed(&dir).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_enforces_term_count() {
        let dir = tempdir("count");
        let mut w = IndexWriter::create(&dir, 10, 2, 64).unwrap();
        w.add_term(vec![Posting::new(1, 5)]).unwrap();
        assert!(w.finish().is_err(), "missing terms must be an error");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("sparta-index-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
