//! Streaming index writer.
//!
//! Terms are appended one at a time so that arbitrarily large corpora
//! can be indexed with O(largest posting list) memory: the synthetic
//! corpus regenerates each term's postings on demand and hands them
//! straight to [`IndexWriter::add_term`].

use super::format::{self, DictEntry, Meta, FORMAT_VERSION};
use crate::builder::IndexKind;
use crate::compressed::CompressedTermData;
use crate::posting::{self, Posting};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Streaming writer producing the on-disk format of [`super`].
pub struct IndexWriter {
    dir: PathBuf,
    meta: Meta,
    dict: Vec<DictEntry>,
    score_file: BufWriter<File>,
    doc_file: BufWriter<File>,
    blocks_file: BufWriter<File>,
    /// The versioned compressed section, present when the writer was
    /// created with [`IndexKind::Compressed`].
    compressed_file: Option<BufWriter<File>>,
    score_off: u64,
    doc_off: u64,
    block_off: u64,
    scratch: Vec<u8>,
}

impl IndexWriter {
    /// Creates the index directory (must not already contain an index)
    /// and opens the data files. `num_terms` terms must subsequently
    /// be added, in term-id order, before [`finish`](Self::finish).
    pub fn create(
        dir: impl AsRef<Path>,
        num_docs: u64,
        num_terms: u32,
        block_size: usize,
    ) -> io::Result<Self> {
        Self::create_with_kind(dir, num_docs, num_terms, block_size, IndexKind::Raw)
    }

    /// As [`create`](Self::create); with [`IndexKind::Compressed`] the
    /// writer additionally emits `compressed.bin`, the versioned
    /// compressed section loadable via
    /// [`super::reader::load_compressed`]. The raw planes are always
    /// written, so the directory stays readable by [`super::reader::DiskIndex`].
    pub fn create_with_kind(
        dir: impl AsRef<Path>,
        num_docs: u64,
        num_terms: u32,
        block_size: usize,
        kind: IndexKind,
    ) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let open = |name: &str| -> io::Result<BufWriter<File>> {
            Ok(BufWriter::new(File::create(dir.join(name))?))
        };
        let compressed_file = match kind {
            IndexKind::Raw => None,
            IndexKind::Compressed => {
                let mut f = open("compressed.bin")?;
                format::write_compressed_header(&mut f, num_docs, num_terms, block_size as u32)?;
                Some(f)
            }
        };
        Ok(Self {
            meta: Meta {
                version: FORMAT_VERSION,
                num_docs,
                num_terms,
                block_size: block_size as u32,
            },
            dict: Vec::with_capacity(num_terms as usize),
            score_file: open("score.bin")?,
            doc_file: open("doc.bin")?,
            blocks_file: open("blocks.bin")?,
            compressed_file,
            score_off: 0,
            doc_off: 0,
            block_off: 0,
            dir,
            scratch: Vec::new(),
        })
    }

    /// Appends the next term's postings (any order; sorted internally).
    pub fn add_term(&mut self, mut postings: Vec<Posting>) -> io::Result<()> {
        if self.dict.len() as u32 >= self.meta.num_terms {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more terms than declared at create()",
            ));
        }
        posting::sort_doc_order(&mut postings);
        let blocks = posting::build_blocks(&postings, self.meta.block_size as usize);
        let max_score = postings.iter().map(|p| p.score).max().unwrap_or(0);

        let entry = DictEntry {
            score_off: self.score_off,
            doc_off: self.doc_off,
            len: postings.len() as u64,
            block_off: self.block_off,
            num_blocks: blocks.len() as u32,
            max_score,
        };

        if let Some(f) = self.compressed_file.as_mut() {
            let td =
                CompressedTermData::from_postings(postings.clone(), self.meta.block_size as usize);
            format::encode_compressed_term(&td, &mut self.scratch);
            f.write_all(&self.scratch)?;
        }

        format::encode_postings(&postings, &mut self.scratch);
        self.doc_file.write_all(&self.scratch)?;
        self.doc_off += self.scratch.len() as u64;

        format::encode_blocks(&blocks, &mut self.scratch);
        self.blocks_file.write_all(&self.scratch)?;
        self.block_off += blocks.len() as u64;

        posting::sort_score_order(&mut postings);
        format::encode_postings(&postings, &mut self.scratch);
        self.score_file.write_all(&self.scratch)?;
        self.score_off += self.scratch.len() as u64;

        self.dict.push(entry);
        Ok(())
    }

    /// Convenience: appends postings given as raw `(doc, score)` pairs.
    pub fn add_term_pairs(&mut self, pairs: &[(u32, u32)]) -> io::Result<()> {
        self.add_term(pairs.iter().map(|&(d, s)| Posting::new(d, s)).collect())
    }

    /// Flushes data files and writes the dictionary and metadata.
    /// Fails if fewer terms than declared were added.
    pub fn finish(mut self) -> io::Result<()> {
        if self.dict.len() as u32 != self.meta.num_terms {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "declared {} terms but added {}",
                    self.meta.num_terms,
                    self.dict.len()
                ),
            ));
        }
        self.score_file.flush()?;
        self.doc_file.flush()?;
        self.blocks_file.flush()?;
        if let Some(mut f) = self.compressed_file.take() {
            f.flush()?;
        }

        let mut dict = BufWriter::new(File::create(self.dir.join("dict.bin"))?);
        for e in &self.dict {
            e.write_to(&mut dict)?;
        }
        dict.flush()?;

        let mut meta = BufWriter::new(File::create(self.dir.join("meta.bin"))?);
        self.meta.write_to(&mut meta)?;
        meta.flush()?;
        Ok(())
    }
}
