//! I/O accounting and simulation.
//!
//! The paper's indexes are disk-resident: "Prior to each experiment,
//! we flush the file system's page cache so all pages are physically
//! read from disk during the experiment" (§5.1), and a key finding is
//! that pRA's random accesses to its secondary index "cannot be
//! sustained even with modern SSD hardware" (§5.3). We do not have the
//! authors' 1TB SSD; instead the disk index routes every read through
//! this layer, which (a) counts sequential block fetches and random
//! accesses, and (b) optionally charges a configurable latency for
//! each, calibrated to SSD behaviour (tens of microseconds per
//! sequential 64KB block, ~100µs per cold random 4KB read).

use sparta_collections::ShardedCounter;
use std::time::{Duration, Instant};

/// Latency model for simulated disk I/O.
///
/// Latencies are charged by spin-waiting (not `sleep`): the granularity
/// required is microseconds, far below OS timer resolution, and the
/// spin also models the CPU stall a synchronous `pread` causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoModel {
    /// Charged per sequential block fetch.
    pub seq_block: Duration,
    /// Charged per random access.
    pub random_access: Duration,
}

impl IoModel {
    /// No charging — pure counting. Reads still hit the real file
    /// system (page cache), so relative costs remain visible.
    pub const fn free() -> Self {
        Self {
            seq_block: Duration::ZERO,
            random_access: Duration::ZERO,
        }
    }

    /// An SSD-like model: 40µs per sequential 64KB block (~1.6GB/s
    /// streaming) and 100µs per cold random read.
    pub const fn ssd() -> Self {
        Self {
            seq_block: Duration::from_micros(40),
            random_access: Duration::from_micros(100),
        }
    }

    #[inline]
    fn charge(d: Duration) {
        if d.is_zero() {
            return;
        }
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    /// Charges one sequential block fetch.
    #[inline]
    pub fn charge_seq(&self) {
        Self::charge(self.seq_block);
    }

    /// Charges one random access.
    #[inline]
    pub fn charge_random(&self) {
        Self::charge(self.random_access);
    }
}

impl Default for IoModel {
    fn default() -> Self {
        Self::free()
    }
}

/// Counters of I/O operations, shared by all cursors of one index.
#[derive(Debug, Default)]
pub struct IoStats {
    seq_blocks: ShardedCounter,
    random_accesses: ShardedCounter,
    bytes_read: ShardedCounter,
    blocks_decoded: ShardedCounter,
    compressed_bytes: ShardedCounter,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sequential block fetch of `bytes` bytes.
    #[inline]
    pub fn record_seq(&self, bytes: u64) {
        self.seq_blocks.incr();
        self.bytes_read.add(bytes);
    }

    /// Records a random access of `bytes` bytes.
    #[inline]
    pub fn record_random(&self, bytes: u64) {
        self.random_accesses.incr();
        self.bytes_read.add(bytes);
    }

    /// Records the decode of one compressed posting block whose packed
    /// representation spans `bytes` bytes. The compressed backend's
    /// companion to `postings_scanned`: how many blocks were actually
    /// decompressed (skipped blocks are never decoded) and how many
    /// compressed bytes moved through the decoder.
    #[inline]
    pub fn record_block_decode(&self, bytes: u64) {
        self.blocks_decoded.incr();
        self.compressed_bytes.add(bytes);
    }

    /// Sequential block fetches so far.
    pub fn seq_blocks(&self) -> u64 {
        self.seq_blocks.get()
    }

    /// Random accesses so far.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses.get()
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Compressed posting blocks decoded so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_decoded.get()
    }

    /// Compressed bytes moved through the block decoder so far.
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes.get()
    }

    /// Snapshot of the disk counters `(seq_blocks, random_accesses,
    /// bytes)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (self.seq_blocks(), self.random_accesses(), self.bytes_read())
    }

    /// Snapshot of the decode counters `(blocks_decoded,
    /// compressed_bytes)`.
    pub fn decode_snapshot(&self) -> (u64, u64) {
        (self.blocks_decoded(), self.compressed_bytes())
    }

    /// Resets all counters (between experiments).
    pub fn reset(&self) {
        self.seq_blocks.reset();
        self.random_accesses.reset();
        self.bytes_read.reset();
        self.blocks_decoded.reset();
        self.compressed_bytes.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_seq(65536);
        s.record_seq(65536);
        s.record_random(8);
        assert_eq!(s.snapshot(), (2, 1, 131080));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0, 0));
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = IoModel::free();
        let t = Instant::now();
        for _ in 0..10_000 {
            m.charge_seq();
            m.charge_random();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn ssd_model_charges_time() {
        let m = IoModel::ssd();
        let t = Instant::now();
        for _ in 0..100 {
            m.charge_random(); // 100 × 100µs = 10ms
        }
        let dt = t.elapsed();
        assert!(dt >= Duration::from_millis(9), "charged {dt:?}");
    }
}
