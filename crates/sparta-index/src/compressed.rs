//! Compressed block-max posting lists: a first-class index backend.
//!
//! The paper benchmarks uncompressed arrays (§5.2), citing Lin &
//! Trotman that decompression overhead is marginal; this module makes
//! that trade-off measurable end-to-end by serving *every* algorithm
//! family (score-order, doc-order, random access) from a compressed
//! representation behind the same cursor traits as
//! [`crate::memory::InMemoryIndex`].
//!
//! ## Layout
//!
//! Postings are grouped into fixed-size blocks
//! ([`crate::posting::DEFAULT_BLOCK_SIZE`] = 64) and packed into a
//! per-term `u64` word buffer with bit-granular offsets:
//!
//! ```text
//! doc-ordered plane, per block:
//!   ┌ doc-id gaps (gap−1, first-of-list raw) @ per-block width ┐
//!   └ score codebook indices @ per-term width ─────────────────┘
//! score-ordered plane, per block:
//!   ┌ raw doc ids @ per-term width ────────────────────────────┐
//!   └ codebook-index *drops* (lists are non-increasing) @ per- ┘
//!     block width
//! ```
//!
//! Scores are coded through a per-term **codebook**: the sorted array
//! of distinct score values. Decoding is therefore *exact* — the
//! backend reproduces raw postings bit-for-bit, which is what lets the
//! full algorithm matrix return identical top-k doc ids on both
//! backends (integer tf-idf corpora carry exact score *ties* at the
//! k-th boundary, so any lossy score plane would flip tie-broken
//! results; see DESIGN.md §14).
//!
//! A lossy **u8 quantized plane** with per-term `(min, scale)` params
//! is kept alongside for the block-max metadata: each block stores a
//! quantized upper bound that *rounds up* (never down), so pruning
//! against it stays admissible. [`BoundMode::Quantized`] serves those
//! bounds through the [`DocCursor`] block-max API; the default
//! [`BoundMode::Exact`] serves exact maxima so pruning decisions — and
//! hence work counters — replay the raw backend exactly.
//!
//! Block decode is branch-light fixed-width unpacking into cursor
//! scratch buffers: no per-posting dispatch, no allocation after
//! cursor construction (enforced by `sparta-lint`'s alloc ban on this
//! file). Every decoded block is counted in [`IoStats`]
//! (`blocks_decoded`, `compressed_bytes`).

use crate::cursor::{DocCursor, RandomAccess, ScoreCursor};
use crate::posting::{self, BlockMeta, Posting, DEFAULT_BLOCK_SIZE};
use crate::{Index, IndexFootprint, IoStats};
use sparta_corpus::types::{DocId, TermId};
use std::sync::{Arc, OnceLock};

/// Upper bound on the supported block size: cursors carry fixed
/// scratch arrays of this many postings so decode never allocates.
pub const MAX_BLOCK: usize = 256;

/// Bit width needed to store `v` (0 for 0).
#[inline]
fn bits_for(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// Appends `values` at `width` bits each to `words`, advancing `*bit`.
/// Build-time only; the decode path never packs.
fn pack(values: &[u32], width: u32, words: &mut Vec<u64>, bit: &mut usize) {
    debug_assert!(width <= 32);
    for &v in values {
        debug_assert!(width == 32 || u64::from(v) < (1u64 << width));
        let w = *bit >> 6;
        let sh = (*bit & 63) as u32;
        while words.len() <= w + 1 {
            words.push(0);
        }
        words[w] |= u64::from(v) << sh;
        // `(v >> 1) >> (63 - sh)` == `v >> (64 - sh)` without the
        // undefined shift at `sh == 0`.
        words[w + 1] |= (u64::from(v) >> 1) >> (63 - sh);
        *bit += width as usize;
    }
}

/// Decodes `out.len()` values of `width` bits starting at `start_bit`.
///
/// The hot loop: two word reads, three shifts, one mask per value —
/// fixed-width, branch-free, auto-vectorizable. `words` must carry one
/// padding word past the last data bit (the builder guarantees it).
#[inline]
fn unpack(words: &[u64], start_bit: usize, width: u32, out: &mut [u32]) {
    debug_assert!(width <= 32);
    if width == 0 {
        for o in out.iter_mut() {
            *o = 0;
        }
        return;
    }
    let mask = (1u64 << width) - 1;
    let mut bit = start_bit;
    for o in out.iter_mut() {
        let w = bit >> 6;
        let sh = (bit & 63) as u32;
        let lo = words[w] >> sh;
        let hi = (words[w + 1] << 1) << (63 - sh);
        *o = ((lo | hi) & mask) as u32;
        bit += width as usize;
    }
}

/// Linear u8 score quantizer with per-term `(min, scale)` params.
///
/// `scale` is the smallest step such that the whole `[min, max]` range
/// maps into 256 levels. Upper bounds are quantized with
/// [`quantize_ceil`](Self::quantize_ceil), which rounds *up*:
/// `dequantize(quantize_ceil(s)) >= s` for every in-range `s`, the
/// admissibility property block-max pruning requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreQuantizer {
    /// Smallest representable score (level 0).
    pub min: u32,
    /// Step between adjacent levels (>= 1).
    pub scale: u32,
}

impl ScoreQuantizer {
    /// Fits the quantizer to the closed range `[min, max]`.
    pub fn fit(min: u32, max: u32) -> Self {
        let range = max.saturating_sub(min);
        Self {
            min,
            scale: (range / 255).max(1) + u32::from(!range.is_multiple_of(255) && range >= 255),
        }
    }

    /// Quantizes an upper bound, rounding up (admissible: the
    /// dequantized level is never below `s`). Values above the fitted
    /// range saturate at level 255.
    pub fn quantize_ceil(&self, s: u32) -> u8 {
        let r = u64::from(s.saturating_sub(self.min));
        let scale = u64::from(self.scale);
        (r.div_ceil(scale)).min(255) as u8
    }

    /// The score value of level `q`.
    pub fn dequantize(&self, q: u8) -> u32 {
        self.min
            .saturating_add(u32::from(q).saturating_mul(self.scale))
    }
}

/// Per-block location of one packed plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PlaneMeta {
    /// Bit offset of the block's first plane in the term's word
    /// buffer.
    pub(crate) off: u32,
    /// Width of the per-block-sized field (doc-id gaps for the
    /// doc-ordered plane, codebook-index drops for the score-ordered
    /// plane).
    pub(crate) bits: u8,
}

/// One term's compressed posting list: both traversal orders packed
/// into a shared word buffer, plus exact and quantized block-max
/// planes. Decoding reproduces the raw postings exactly.
#[derive(Debug, Clone, Default)]
pub struct CompressedTermData {
    pub(crate) len: u32,
    pub(crate) max_score: u32,
    pub(crate) block_size: u32,
    /// Sorted distinct score values (the exact codebook).
    pub(crate) dict: Vec<u32>,
    /// Exact block-max metadata over the doc-ordered plane — identical
    /// to the raw backend's.
    pub(crate) blocks: Vec<BlockMeta>,
    /// Quantized (admissible, rounded-up) block upper bounds.
    pub(crate) quant: Option<ScoreQuantizer>,
    pub(crate) qmax: Vec<u8>,
    /// Codebook-index width in the doc-ordered plane.
    pub(crate) sidx_bits: u8,
    /// Raw doc-id width in the score-ordered plane.
    pub(crate) doc_raw_bits: u8,
    pub(crate) doc_meta: Vec<PlaneMeta>,
    pub(crate) score_meta: Vec<PlaneMeta>,
    /// Packed planes + one padding word.
    pub(crate) words: Vec<u64>,
}

impl CompressedTermData {
    /// Builds one term's compressed data from postings in any order.
    pub fn from_postings(mut postings: Vec<Posting>, block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size <= MAX_BLOCK,
            "block_size must be in 1..={MAX_BLOCK}"
        );
        if postings.is_empty() {
            return Self {
                block_size: block_size as u32,
                ..Self::default()
            };
        }
        posting::sort_doc_order(&mut postings);
        let blocks = posting::build_blocks(&postings, block_size);
        let max_score = postings.iter().map(|p| p.score).max().expect("non-empty");
        let min_score = postings.iter().map(|p| p.score).min().expect("non-empty");

        // lint: allow(alloc): build-time codebook assembly
        let mut dict: Vec<u32> = postings.iter().map(|p| p.score).collect();
        dict.sort_unstable();
        dict.dedup();
        let sidx_bits = bits_for(dict.len() as u32 - 1) as u8;

        let quant = ScoreQuantizer::fit(min_score, max_score);
        // lint: allow(alloc): build-time quantized bound plane
        let mut qmax: Vec<u8> = Vec::with_capacity(blocks.len());
        qmax.extend(blocks.iter().map(|b| quant.quantize_ceil(b.max_score)));

        // lint: allow(alloc): build-time plane buffers
        let mut words: Vec<u64> = Vec::with_capacity(postings.len() / 2 + 2);
        // lint: allow(alloc): build-time block directory
        let mut doc_meta: Vec<PlaneMeta> = Vec::with_capacity(blocks.len());
        // lint: allow(alloc): build-time block directory
        let mut score_meta: Vec<PlaneMeta> = Vec::with_capacity(blocks.len());
        let mut bit = 0usize;
        // lint: allow(alloc): build-time staging buffers
        let mut gaps: Vec<u32> = Vec::with_capacity(block_size);
        // lint: allow(alloc): build-time staging buffers
        let mut idxs: Vec<u32> = Vec::with_capacity(block_size);

        // Doc-ordered plane: per-block gap−1 deltas (the first posting
        // of the list stores its doc id raw) + codebook indices.
        let mut prev_doc = 0u32;
        for (bi, chunk) in postings.chunks(block_size).enumerate() {
            gaps.clear();
            idxs.clear();
            for (i, p) in chunk.iter().enumerate() {
                let gap = if bi == 0 && i == 0 {
                    p.doc
                } else {
                    p.doc - prev_doc - 1
                };
                gaps.push(gap);
                idxs.push(dict.binary_search(&p.score).expect("score in codebook") as u32);
                prev_doc = p.doc;
            }
            let gap_bits = gaps.iter().copied().max().map_or(0, bits_for);
            let off = u32::try_from(bit).expect("term plane exceeds 512MB");
            pack(&gaps, gap_bits, &mut words, &mut bit);
            pack(&idxs, u32::from(sidx_bits), &mut words, &mut bit);
            doc_meta.push(PlaneMeta {
                off,
                bits: gap_bits as u8,
            });
        }

        // Score-ordered plane: per-block raw doc ids + codebook-index
        // drops chained from level `dict.len() - 1` (the list's first
        // posting always carries the maximum score).
        // lint: allow(alloc): build-time score-order staging
        let mut score_order = postings.clone();
        posting::sort_score_order(&mut score_order);
        let doc_raw_bits = bits_for(blocks.last().expect("non-empty").last_doc) as u8;
        let mut prev_idx = dict.len() as u32 - 1;
        for chunk in score_order.chunks(block_size) {
            gaps.clear(); // reused for raw doc ids
            idxs.clear(); // reused for index drops
            for p in chunk {
                gaps.push(p.doc);
                let idx = dict.binary_search(&p.score).expect("score in codebook") as u32;
                idxs.push(prev_idx - idx);
                prev_idx = idx;
            }
            let drop_bits = idxs.iter().copied().max().map_or(0, bits_for);
            let off = u32::try_from(bit).expect("term plane exceeds 512MB");
            pack(&gaps, u32::from(doc_raw_bits), &mut words, &mut bit);
            pack(&idxs, drop_bits, &mut words, &mut bit);
            score_meta.push(PlaneMeta {
                off,
                bits: drop_bits as u8,
            });
        }

        // Guarantee the decode path's one-word lookahead.
        words.push(0);

        Self {
            len: postings.len() as u32,
            max_score,
            block_size: block_size as u32,
            dict,
            blocks,
            quant: Some(quant),
            qmax,
            sidx_bits,
            doc_raw_bits,
            doc_meta,
            score_meta,
            words,
        }
    }

    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exact list-wide maximum score.
    #[inline]
    pub fn max_score(&self) -> u32 {
        self.max_score
    }

    /// Exact block-max metadata (identical to the raw backend's).
    #[inline]
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// The fitted quantizer (`None` for empty lists).
    #[inline]
    pub fn quantizer(&self) -> Option<ScoreQuantizer> {
        self.quant
    }

    /// The quantized (rounded-up, admissible) upper bound of block
    /// `bi`, dequantized back to score space.
    #[inline]
    pub fn quantized_block_max(&self, bi: usize) -> u32 {
        match self.quant {
            Some(q) => q.dequantize(self.qmax[bi]),
            None => 0,
        }
    }

    /// Number of postings in block `bi` (the last block may be short).
    #[inline]
    fn block_len(&self, bi: usize) -> usize {
        let bs = self.block_size as usize;
        (self.len as usize - bi * bs).min(bs)
    }

    /// Packed size in bytes of doc-ordered block `bi` (decode cost).
    #[inline]
    fn doc_block_bytes(&self, bi: usize) -> u64 {
        let n = self.block_len(bi) as u64;
        (n * (u64::from(self.doc_meta[bi].bits) + u64::from(self.sidx_bits))).div_ceil(8)
    }

    /// Packed size in bytes of score-ordered block `bi`.
    #[inline]
    fn score_block_bytes(&self, bi: usize) -> u64 {
        let n = self.block_len(bi) as u64;
        (n * (u64::from(self.doc_raw_bits) + u64::from(self.score_meta[bi].bits))).div_ceil(8)
    }

    /// Decodes doc-ordered block `bi` into `docs`/`scores` scratch.
    /// Returns the number of postings decoded. Allocation-free.
    pub fn decode_doc_block(
        &self,
        bi: usize,
        docs: &mut [u32; MAX_BLOCK],
        scores: &mut [u32; MAX_BLOCK],
    ) -> usize {
        let n = self.block_len(bi);
        let m = self.doc_meta[bi];
        let gap_bits = u32::from(m.bits);
        unpack(&self.words, m.off as usize, gap_bits, &mut docs[..n]);
        unpack(
            &self.words,
            m.off as usize + n * gap_bits as usize,
            u32::from(self.sidx_bits),
            &mut scores[..n],
        );
        // Gaps → doc ids (gap−1 coding, first-of-list raw).
        let mut d = if bi == 0 {
            docs[0]
        } else {
            self.blocks[bi - 1].last_doc + docs[0] + 1
        };
        docs[0] = d;
        for v in docs[1..n].iter_mut() {
            d = d + *v + 1;
            *v = d;
        }
        // Codebook indices → exact scores.
        for s in scores[..n].iter_mut() {
            debug_assert!((*s as usize) < self.dict.len());
            // Clamped gather: corrupt on-disk planes yield wrong
            // scores, never a panic.
            *s = self.dict[(*s as usize).min(self.dict.len() - 1)];
        }
        n
    }

    /// Decodes score-ordered block `bi` into `docs`/`scores` scratch.
    /// `prev_idx` is the chaining state: the codebook index of the
    /// posting immediately before this block (`dict.len() - 1` before
    /// block 0). Returns `(postings_decoded, new_prev_idx)`.
    pub fn decode_score_block(
        &self,
        bi: usize,
        prev_idx: u32,
        docs: &mut [u32; MAX_BLOCK],
        scores: &mut [u32; MAX_BLOCK],
    ) -> (usize, u32) {
        let n = self.block_len(bi);
        let m = self.score_meta[bi];
        let doc_bits = u32::from(self.doc_raw_bits);
        unpack(&self.words, m.off as usize, doc_bits, &mut docs[..n]);
        unpack(
            &self.words,
            m.off as usize + n * doc_bits as usize,
            u32::from(m.bits),
            &mut scores[..n],
        );
        // Index drops → codebook indices → exact scores.
        let mut idx = prev_idx;
        for s in scores[..n].iter_mut() {
            debug_assert!(*s <= idx);
            idx = idx.wrapping_sub(*s);
            *s = self.dict[(idx as usize).min(self.dict.len() - 1)];
        }
        (n, idx)
    }

    /// In-memory footprint of the compressed representation.
    pub fn footprint(&self) -> IndexFootprint {
        IndexFootprint {
            posting_bytes: self.words.len() as u64 * 8,
            metadata_bytes: self.dict.len() as u64 * 4
                + self.blocks.len() as u64 * 8
                + self.qmax.len() as u64
                + (self.doc_meta.len() + self.score_meta.len()) as u64 * 5
                + 16, // len, max_score, widths, quant params
        }
    }
}

/// Which block-max plane the [`DocCursor`] block APIs serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundMode {
    /// Exact per-block maxima: pruning decisions (and therefore work
    /// counters) replay the raw backend bit-for-bit.
    #[default]
    Exact,
    /// u8 quantized, rounded-up maxima: admissible but looser. Exact
    /// algorithms keep recall 1.0; pruning may fire less often.
    Quantized,
}

fn empty_term() -> &'static CompressedTermData {
    static EMPTY: OnceLock<CompressedTermData> = OnceLock::new();
    EMPTY.get_or_init(CompressedTermData::default)
}

/// A RAM-resident [`Index`] serving compressed posting lists.
#[derive(Debug)]
pub struct CompressedIndex {
    terms: Vec<CompressedTermData>,
    num_docs: u64,
    block_size: usize,
    bounds: BoundMode,
    io: IoStats,
}

impl CompressedIndex {
    /// Assembles an index from per-term posting vectors (any order).
    pub fn from_term_postings(terms: Vec<Vec<Posting>>, num_docs: u64) -> Self {
        Self::with_block_size(terms, num_docs, DEFAULT_BLOCK_SIZE)
    }

    /// As [`from_term_postings`](Self::from_term_postings) with an
    /// explicit block size (at most [`MAX_BLOCK`]).
    pub fn with_block_size(terms: Vec<Vec<Posting>>, num_docs: u64, block_size: usize) -> Self {
        let terms = terms
            .into_iter()
            .map(|p| CompressedTermData::from_postings(p, block_size))
            // lint: allow(alloc): build-time term assembly
            .collect();
        Self {
            terms,
            num_docs,
            block_size,
            bounds: BoundMode::Exact,
            io: IoStats::new(),
        }
    }

    /// Re-encodes an existing raw in-memory index (the bench harness's
    /// path: build once, serve both backends from the same postings).
    pub fn from_index(ix: &crate::memory::InMemoryIndex) -> Self {
        let terms = (0..ix.num_terms())
            .map(|t| match ix.term_data(t) {
                Some(td) => {
                    // lint: allow(alloc): build-time copy of raw postings
                    let postings = td.doc_order.to_vec();
                    CompressedTermData::from_postings(postings, ix.block_size())
                }
                None => CompressedTermData::default(),
            })
            // lint: allow(alloc): build-time term assembly
            .collect();
        Self {
            terms,
            num_docs: ix.num_docs(),
            block_size: ix.block_size(),
            bounds: BoundMode::Exact,
            io: IoStats::new(),
        }
    }

    /// Reassembles an index from already-built term data (the storage
    /// reader's path).
    pub(crate) fn from_parts(
        terms: Vec<CompressedTermData>,
        num_docs: u64,
        block_size: usize,
    ) -> Self {
        Self {
            terms,
            num_docs,
            block_size,
            bounds: BoundMode::Exact,
            io: IoStats::new(),
        }
    }

    /// Selects which block-max plane doc cursors serve.
    pub fn with_bound_mode(mut self, bounds: BoundMode) -> Self {
        self.bounds = bounds;
        self
    }

    /// The configured bound mode.
    pub fn bound_mode(&self) -> BoundMode {
        self.bounds
    }

    /// Block size used for all terms.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Direct access to a term's compressed data.
    pub fn term_data(&self, term: TermId) -> Option<&CompressedTermData> {
        self.terms.get(term as usize)
    }

    /// Total in-memory footprint of all terms.
    pub fn footprint(&self) -> IndexFootprint {
        let mut f = IndexFootprint::default();
        for t in &self.terms {
            let tf = t.footprint();
            f.posting_bytes += tf.posting_bytes;
            f.metadata_bytes += tf.metadata_bytes;
        }
        f
    }
}

/// Resolves a term's data + the index's I/O counters for a cursor —
/// either borrowed (`&CompressedIndex`) or owning (`Arc`).
pub trait TermAccess: Send {
    /// The term's compressed data.
    fn term(&self) -> &CompressedTermData;
    /// The index-wide I/O counters.
    fn io(&self) -> &IoStats;
}

struct BorrowedTerm<'a> {
    td: &'a CompressedTermData,
    io: &'a IoStats,
}

impl TermAccess for BorrowedTerm<'_> {
    fn term(&self) -> &CompressedTermData {
        self.td
    }
    fn io(&self) -> &IoStats {
        self.io
    }
}

struct ArcTerm {
    ix: Arc<CompressedIndex>,
    term: TermId,
}

impl TermAccess for ArcTerm {
    fn term(&self) -> &CompressedTermData {
        self.ix
            .terms
            .get(self.term as usize)
            .unwrap_or_else(|| empty_term())
    }
    fn io(&self) -> &IoStats {
        &self.ix.io
    }
}

/// Score-order cursor: decodes one block per refill into fixed scratch.
pub struct CompressedScoreCursor<H> {
    h: H,
    /// Global position of the next posting to deliver.
    pos: usize,
    /// Global position corresponding to `scratch[0]`.
    base: usize,
    /// Valid postings in scratch (0 = nothing decoded yet).
    n: usize,
    /// Codebook-index chaining state across blocks.
    prev_idx: u32,
    docs: [u32; MAX_BLOCK],
    scores: [u32; MAX_BLOCK],
}

impl<H: TermAccess> CompressedScoreCursor<H> {
    fn new(h: H) -> Self {
        let prev_idx = h.term().dict.len().saturating_sub(1) as u32;
        Self {
            h,
            pos: 0,
            base: 0,
            n: 0,
            prev_idx,
            docs: [0; MAX_BLOCK],
            scores: [0; MAX_BLOCK],
        }
    }

    /// Ensures the block containing `self.pos` is decoded. Blocks are
    /// only ever consumed forward, so chaining state stays valid.
    #[inline]
    fn fill(&mut self) -> bool {
        let td = self.h.term();
        if self.pos >= td.len() {
            return false;
        }
        if self.n > 0 && self.pos < self.base + self.n {
            return true;
        }
        let bi = self.pos / td.block_size as usize;
        let (n, idx) = td.decode_score_block(bi, self.prev_idx, &mut self.docs, &mut self.scores);
        self.h.io().record_block_decode(td.score_block_bytes(bi));
        self.base = bi * td.block_size as usize;
        self.n = n;
        self.prev_idx = idx;
        true
    }
}

impl<H: TermAccess> ScoreCursor for CompressedScoreCursor<H> {
    #[inline]
    fn next(&mut self) -> Option<Posting> {
        if !self.fill() {
            return None;
        }
        let i = self.pos - self.base;
        self.pos += 1;
        Some(Posting::new(self.docs[i], self.scores[i]))
    }

    fn remaining(&self) -> u64 {
        (self.h.term().len() - self.pos) as u64
    }

    fn len(&self) -> u64 {
        self.h.term().len() as u64
    }

    fn next_segment(&mut self, n: usize, out: &mut Vec<Posting>) -> usize {
        out.clear();
        let want = n.min(self.h.term().len() - self.pos);
        while out.len() < want {
            if !self.fill() {
                break;
            }
            let i = self.pos - self.base;
            let take = (self.n - i).min(want - out.len());
            for j in i..i + take {
                out.push(Posting::new(self.docs[j], self.scores[j]));
            }
            self.pos += take;
        }
        out.len()
    }
}

/// Doc-order cursor with block-max metadata. The current block is
/// always decoded; blocks jumped over by `seek`/`block_at` pruning are
/// never touched — that is the compressed backend's skip win.
pub struct CompressedDocCursor<H> {
    h: H,
    bounds: BoundMode,
    /// Global position of the current posting.
    pos: usize,
    /// Block index currently decoded in scratch (`usize::MAX` = none).
    loaded: usize,
    n: usize,
    docs: [u32; MAX_BLOCK],
    scores: [u32; MAX_BLOCK],
}

impl<H: TermAccess> CompressedDocCursor<H> {
    fn new(h: H, bounds: BoundMode) -> Self {
        let mut c = Self {
            h,
            bounds,
            pos: 0,
            loaded: usize::MAX,
            n: 0,
            docs: [0; MAX_BLOCK],
            scores: [0; MAX_BLOCK],
        };
        if !c.h.term().is_empty() {
            c.load(0);
        }
        c
    }

    #[inline]
    fn load(&mut self, bi: usize) {
        if self.loaded == bi {
            return;
        }
        let td = self.h.term();
        self.n = td.decode_doc_block(bi, &mut self.docs, &mut self.scores);
        self.h.io().record_block_decode(td.doc_block_bytes(bi));
        self.loaded = bi;
    }

    #[inline]
    fn block_size(&self) -> usize {
        self.h.term().block_size as usize
    }

    #[inline]
    fn block_idx(&self) -> usize {
        self.pos / self.block_size()
    }

    #[inline]
    fn exhausted(&self) -> bool {
        self.pos >= self.h.term().len()
    }

    /// The served max of block `bi` under the configured bound plane.
    #[inline]
    fn served_block_max(&self, bi: usize) -> u32 {
        let td = self.h.term();
        match self.bounds {
            BoundMode::Exact => td.blocks[bi].max_score,
            BoundMode::Quantized => td.quantized_block_max(bi),
        }
    }
}

impl<H: TermAccess> DocCursor for CompressedDocCursor<H> {
    #[inline]
    fn doc(&self) -> Option<DocId> {
        if self.exhausted() {
            return None;
        }
        Some(self.docs[self.pos - self.loaded * self.block_size()])
    }

    #[inline]
    fn score(&self) -> u32 {
        if self.exhausted() {
            return 0;
        }
        self.scores[self.pos - self.loaded * self.block_size()]
    }

    fn advance(&mut self) -> Option<DocId> {
        if self.exhausted() {
            return None;
        }
        self.pos += 1;
        if self.exhausted() {
            return None;
        }
        let bi = self.block_idx();
        self.load(bi);
        self.doc()
    }

    fn seek(&mut self, target: DocId) -> Option<DocId> {
        match self.doc() {
            Some(d) if d >= target => return Some(d),
            None => return None,
            _ => {}
        }
        let td = self.h.term();
        let from = self.block_idx();
        let bi = from + td.blocks[from..].partition_point(|b| b.last_doc < target);
        if bi >= td.blocks.len() {
            self.pos = td.len();
            return None;
        }
        self.load(bi);
        let start = (bi * self.block_size()).max(self.pos);
        let lo = start - bi * self.block_size();
        let inner = self.docs[lo..self.n].partition_point(|&d| d < target);
        self.pos = start + inner;
        debug_assert!(self.pos < self.h.term().len());
        self.doc()
    }

    fn block_at(&self, target: DocId) -> Option<(DocId, u32)> {
        if self.exhausted() {
            return None;
        }
        let td = self.h.term();
        let from = self.block_idx();
        let bi = from + td.blocks[from..].partition_point(|b| b.last_doc < target);
        if bi >= td.blocks.len() {
            return None;
        }
        Some((td.blocks[bi].last_doc, self.served_block_max(bi)))
    }

    fn block_max_score(&self) -> u32 {
        if self.exhausted() {
            return 0;
        }
        self.served_block_max(self.block_idx())
    }

    fn block_last_doc(&self) -> Option<DocId> {
        if self.exhausted() {
            return None;
        }
        Some(self.h.term().blocks[self.block_idx()].last_doc)
    }

    fn skip_block(&mut self) -> Option<DocId> {
        let next = (self.block_idx() + 1) * self.block_size();
        self.pos = next.min(self.h.term().len());
        if self.exhausted() {
            return None;
        }
        let bi = self.block_idx();
        self.load(bi);
        self.doc()
    }

    fn max_score(&self) -> u32 {
        self.h.term().max_score
    }

    fn len(&self) -> u64 {
        self.h.term().len() as u64
    }
}

impl Index for CompressedIndex {
    fn num_docs(&self) -> u64 {
        self.num_docs
    }

    fn num_terms(&self) -> u32 {
        self.terms.len() as u32
    }

    fn doc_freq(&self, term: TermId) -> u64 {
        self.term_data(term).map_or(0, |t| t.len() as u64)
    }

    fn max_score(&self, term: TermId) -> u32 {
        self.term_data(term).map_or(0, |t| t.max_score)
    }

    fn score_cursor(&self, term: TermId) -> Box<dyn ScoreCursor + '_> {
        let td = self.term_data(term).unwrap_or_else(|| empty_term());
        // lint: allow(alloc): cursor construction
        Box::new(CompressedScoreCursor::new(BorrowedTerm {
            td,
            io: &self.io,
        }))
    }

    fn doc_cursor(&self, term: TermId) -> Box<dyn DocCursor + '_> {
        let td = self.term_data(term).unwrap_or_else(|| empty_term());
        // lint: allow(alloc): cursor construction
        Box::new(CompressedDocCursor::new(
            BorrowedTerm { td, io: &self.io },
            self.bounds,
        ))
    }

    fn score_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn ScoreCursor> {
        // lint: allow(alloc): cursor construction
        Box::new(CompressedScoreCursor::new(ArcTerm { ix: self, term }))
    }

    fn doc_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn DocCursor> {
        let bounds = self.bounds;
        // lint: allow(alloc): cursor construction
        Box::new(CompressedDocCursor::new(ArcTerm { ix: self, term }, bounds))
    }

    fn random_access(&self) -> Option<&dyn RandomAccess> {
        Some(self)
    }

    fn io_stats(&self) -> Option<&IoStats> {
        Some(&self.io)
    }

    fn footprint(&self) -> Option<IndexFootprint> {
        Some(self.footprint())
    }
}

impl RandomAccess for CompressedIndex {
    fn term_score(&self, term: TermId, doc: DocId) -> u32 {
        let Some(td) = self.term_data(term) else {
            return 0;
        };
        if td.is_empty() {
            return 0;
        }
        let bi = td.blocks.partition_point(|b| b.last_doc < doc);
        if bi >= td.blocks.len() {
            return 0;
        }
        // Stack scratch: random access decodes one block per probe.
        let mut docs = [0u32; MAX_BLOCK];
        let mut scores = [0u32; MAX_BLOCK];
        let n = td.decode_doc_block(bi, &mut docs, &mut scores);
        self.io.record_block_decode(td.doc_block_bytes(bi));
        match docs[..n].binary_search(&doc) {
            Ok(i) => scores[i],
            Err(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::SliceScoreCursor;
    use crate::memory::InMemoryIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_postings(seed: u64, len: usize, max_doc: u32) -> Vec<Posting> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut docs: Vec<u32> = (0..max_doc).collect();
        // Take `len` distinct docs.
        for i in 0..docs.len() {
            let j = rng.gen_range(i..docs.len());
            docs.swap(i, j);
        }
        docs.truncate(len);
        docs.sort_unstable();
        docs.into_iter()
            .map(|d| Posting::new(d, rng.gen_range(1..5_000_000)))
            .collect()
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        for width in [0u32, 1, 3, 7, 8, 13, 17, 24, 31, 32] {
            let vals: Vec<u32> = (0..200)
                .map(|_| {
                    if width == 32 {
                        rng.gen()
                    } else {
                        rng.gen_range(0..(1u64 << width)) as u32
                    }
                })
                .collect();
            let mut words = Vec::new();
            let mut bit = 3; // deliberately unaligned start
            words.push(0);
            pack(&vals, width, &mut words, &mut bit);
            words.push(0);
            let mut out = vec![0u32; vals.len()];
            unpack(&words, 3, width, &mut out);
            assert_eq!(out, vals, "width {width}");
        }
    }

    #[test]
    fn quantizer_is_admissible_and_tight() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let min: u32 = rng.gen_range(0..3_000_000);
            let max: u32 = min + rng.gen_range(0..4_000_000u32);
            let q = ScoreQuantizer::fit(min, max);
            for _ in 0..64 {
                let s = rng.gen_range(min..=max);
                let up = q.dequantize(q.quantize_ceil(s));
                assert!(up >= s, "dequantized bound {up} < true {s}");
                // Tightness: one level at most above.
                assert!(u64::from(up) <= u64::from(s) + u64::from(q.scale));
            }
            assert_eq!(q.dequantize(q.quantize_ceil(min)), min, "min is exact");
        }
    }

    #[test]
    fn quantizer_degenerate_ranges() {
        let q = ScoreQuantizer::fit(42, 42);
        assert_eq!(q.scale, 1);
        assert_eq!(q.quantize_ceil(42), 0);
        assert_eq!(q.dequantize(0), 42);
        // Saturation above the fitted range.
        assert_eq!(q.quantize_ceil(u32::MAX), 255);
    }

    fn assert_term_round_trip(postings: &[Posting], block_size: usize) {
        let td = CompressedTermData::from_postings(postings.to_vec(), block_size);
        let mut doc_order = postings.to_vec();
        posting::sort_doc_order(&mut doc_order);
        let mut score_order = postings.to_vec();
        posting::sort_score_order(&mut score_order);

        // Doc plane.
        let mut docs = [0u32; MAX_BLOCK];
        let mut scores = [0u32; MAX_BLOCK];
        let mut got = Vec::new();
        for bi in 0..td.blocks.len() {
            let n = td.decode_doc_block(bi, &mut docs, &mut scores);
            for i in 0..n {
                got.push(Posting::new(docs[i], scores[i]));
            }
        }
        assert_eq!(got, doc_order, "doc plane, bs={block_size}");

        // Score plane.
        got.clear();
        let mut prev = td.dict.len().saturating_sub(1) as u32;
        for bi in 0..td.score_meta.len() {
            let (n, p) = td.decode_score_block(bi, prev, &mut docs, &mut scores);
            prev = p;
            for i in 0..n {
                got.push(Posting::new(docs[i], scores[i]));
            }
        }
        assert_eq!(got, score_order, "score plane, bs={block_size}");

        // Exact block metadata matches the raw builder.
        assert_eq!(td.blocks, posting::build_blocks(&doc_order, block_size));
        // Quantized plane is admissible.
        for (bi, b) in td.blocks.iter().enumerate() {
            assert!(td.quantized_block_max(bi) >= b.max_score);
        }
    }

    #[test]
    fn term_data_round_trips_exactly() {
        for (seed, len, max_doc, bs) in [
            (1u64, 1usize, 10u32, 64usize),
            (2, 7, 50, 3),
            (3, 64, 200, 64),
            (4, 65, 200, 64),
            (5, 500, 2_000, 64),
            (6, 333, 100_000, 32),
            (7, 129, 1 << 20, 256),
        ] {
            assert_term_round_trip(&sample_postings(seed, len, max_doc), bs);
        }
    }

    #[test]
    fn constant_scores_pack_to_zero_width() {
        let ps: Vec<Posting> = (0..130u32).map(|i| Posting::new(i * 3, 777)).collect();
        let td = CompressedTermData::from_postings(ps.clone(), 64);
        assert_eq!(td.dict.len(), 1);
        assert_eq!(td.sidx_bits, 0);
        assert_term_round_trip(&ps, 64);
    }

    #[test]
    fn empty_term_is_safe() {
        let td = CompressedTermData::from_postings(Vec::new(), 64);
        assert!(td.is_empty());
        assert_eq!(td.max_score(), 0);
        let ix = CompressedIndex::from_term_postings(vec![Vec::new()], 10);
        let mut sc = ix.score_cursor(0);
        assert_eq!(sc.next(), None);
        let mut dc = ix.doc_cursor(0);
        assert_eq!(dc.doc(), None);
        assert_eq!(dc.advance(), None);
        assert_eq!(dc.seek(3), None);
        assert_eq!(dc.skip_block(), None);
        // Unknown terms too.
        assert_eq!(ix.score_cursor(99).next(), None);
        assert_eq!(ix.doc_cursor(99).doc(), None);
        assert_eq!(ix.term_score(99, 0), 0);
    }

    /// The compressed index must behave identically to the raw one on
    /// every cursor operation.
    #[test]
    fn matches_in_memory_index() {
        let lists: Vec<Vec<Posting>> = (0..8)
            .map(|t| sample_postings(100 + t, 40 + 37 * t as usize, 4_000))
            .collect();
        let raw = InMemoryIndex::from_term_postings(lists.clone(), 4_000);
        let comp = CompressedIndex::from_term_postings(lists, 4_000);
        for t in 0..raw.num_terms() {
            assert_eq!(raw.doc_freq(t), comp.doc_freq(t));
            assert_eq!(raw.max_score(t), comp.max_score(t));
            // Score cursors agree posting-for-posting.
            let mut a = raw.score_cursor(t);
            let mut b = comp.score_cursor(t);
            loop {
                let (x, y) = (a.next(), b.next());
                assert_eq!(x, y, "term {t} score order");
                if x.is_none() {
                    break;
                }
            }
            // Segments agree.
            let mut a = raw.score_cursor(t);
            let mut b = comp.score_cursor(t);
            let (mut sa, mut sb) = (Vec::new(), Vec::new());
            loop {
                let (na, nb) = (a.next_segment(17, &mut sa), b.next_segment(17, &mut sb));
                assert_eq!(na, nb);
                assert_eq!(sa, sb, "term {t} segment");
                if na == 0 {
                    break;
                }
            }
            // Doc cursors agree under a mixed advance/seek walk.
            let mut a = raw.doc_cursor(t);
            let mut b = comp.doc_cursor(t);
            let mut step = 0u32;
            loop {
                assert_eq!(a.doc(), b.doc(), "term {t}");
                assert_eq!(a.score(), b.score(), "term {t}");
                assert_eq!(a.block_max_score(), b.block_max_score(), "term {t}");
                assert_eq!(a.block_last_doc(), b.block_last_doc(), "term {t}");
                assert_eq!(a.max_score(), b.max_score());
                let Some(d) = a.doc() else { break };
                assert_eq!(a.block_at(d + step), b.block_at(d + step), "term {t}");
                step = (step * 7 + 13) % 200;
                match step % 3 {
                    0 => {
                        a.advance();
                        b.advance();
                    }
                    1 => {
                        assert_eq!(a.seek(d + step), b.seek(d + step), "term {t} seek");
                    }
                    _ => {
                        assert_eq!(a.skip_block(), b.skip_block(), "term {t} skip");
                    }
                }
            }
            // Random access agrees on present and absent docs.
            for d in (0..4_000).step_by(61) {
                assert_eq!(
                    raw.term_score(t, d),
                    comp.term_score(t, d),
                    "term {t} doc {d}"
                );
            }
        }
    }

    #[test]
    fn arc_cursors_match_borrowed() {
        let lists = vec![sample_postings(55, 150, 1_000)];
        let comp = Arc::new(CompressedIndex::from_term_postings(lists, 1_000));
        let mut a = comp.score_cursor(0);
        let mut b = Arc::clone(&comp).score_cursor_arc(0);
        loop {
            let (x, y) = (a.next(), b.next());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        let mut a = comp.doc_cursor(0);
        let mut b = Arc::clone(&comp).doc_cursor_arc(0);
        while let Some(d) = a.doc() {
            assert_eq!(b.doc(), Some(d));
            a.advance();
            b.advance();
        }
        assert_eq!(b.doc(), None);
    }

    #[test]
    fn quantized_bounds_dominate_exact() {
        let lists = vec![sample_postings(9, 400, 10_000)];
        let exact = CompressedIndex::from_term_postings(lists.clone(), 10_000);
        let quant = CompressedIndex::from_term_postings(lists, 10_000)
            .with_bound_mode(BoundMode::Quantized);
        let mut ce = exact.doc_cursor(0);
        let mut cq = quant.doc_cursor(0);
        loop {
            assert!(cq.block_max_score() >= ce.block_max_score(), "admissible");
            assert_eq!(cq.block_last_doc(), ce.block_last_doc());
            if ce.skip_block().is_none() {
                cq.skip_block();
                break;
            }
            cq.skip_block();
        }
    }

    #[test]
    fn io_stats_count_decodes_and_bytes() {
        let lists = vec![sample_postings(21, 640, 5_000)];
        let comp = CompressedIndex::from_term_postings(lists, 5_000);
        let io = comp.io_stats().unwrap();
        assert_eq!(io.blocks_decoded(), 0);
        // Full score scan: 10 blocks of 64.
        let mut c = comp.score_cursor(0);
        while c.next().is_some() {}
        assert_eq!(io.blocks_decoded(), 10);
        assert!(io.compressed_bytes() > 0);
        let bytes_after_scan = io.compressed_bytes();
        // A doc cursor decodes block 0 on open.
        let _dc = comp.doc_cursor(0);
        assert_eq!(io.blocks_decoded(), 11);
        // Random access decodes exactly one block per probe.
        comp.term_score(0, 123);
        assert_eq!(io.blocks_decoded(), 12);
        assert!(io.compressed_bytes() > bytes_after_scan);
        io.reset();
        assert_eq!(io.blocks_decoded(), 0);
        assert_eq!(io.compressed_bytes(), 0);
    }

    #[test]
    fn footprint_is_smaller_than_raw() {
        let lists: Vec<Vec<Posting>> = (0..4)
            .map(|t| sample_postings(300 + t, 1_000, 8_000))
            .collect();
        let raw = InMemoryIndex::from_term_postings(lists.clone(), 8_000);
        let comp = CompressedIndex::from_term_postings(lists, 8_000);
        let rf = Index::footprint(&raw).unwrap();
        let cf = comp.footprint();
        assert!(
            cf.total() * 2 < rf.total(),
            "compressed {} vs raw {}",
            cf.total(),
            rf.total()
        );
    }

    #[test]
    fn score_cursor_streams_like_slice_cursor() {
        let ps = sample_postings(77, 333, 2_000);
        let td = CompressedTermData::from_postings(ps.clone(), 64);
        let mut sorted = ps;
        posting::sort_score_order(&mut sorted);
        let ix = CompressedIndex::from_parts(vec![td], 2_000, 64);
        let mut a = SliceScoreCursor::new(sorted.as_slice());
        let mut b = ix.score_cursor(0);
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        for n in [1usize, 5, 64, 70, 64, 1000] {
            assert_eq!(a.next_segment(n, &mut sa), b.next_segment(n, &mut sb));
            assert_eq!(sa, sb);
            assert_eq!(a.remaining(), b.remaining());
        }
    }
}
