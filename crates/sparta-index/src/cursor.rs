//! Cursor traits: the three index access paths of §3.

use crate::posting::Posting;
use sparta_corpus::types::{DocId, TermId};

/// Sequential traversal of one posting list in decreasing term-score
/// order ("score-order" / "impact-order" access, §3.1). Used by the TA
/// family (RA, NRA, Sparta) and JASS.
pub trait ScoreCursor: Send {
    /// Returns the next posting, or `None` at the end of the list.
    fn next(&mut self) -> Option<Posting>;

    /// Number of postings not yet returned.
    fn remaining(&self) -> u64;

    /// Total length of the underlying list.
    fn len(&self) -> u64;

    /// Whether the list is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills `out` with up to `n` postings (a segment). Returns the
    /// number delivered. Sparta traverses lists in segments of
    /// `segSize` (§4.2); delivering a whole segment per call amortizes
    /// per-posting dispatch.
    fn next_segment(&mut self, n: usize, out: &mut Vec<Posting>) -> usize {
        out.clear();
        for _ in 0..n {
            match self.next() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out.len()
    }
}

/// Traversal of one posting list in increasing document-id order with
/// block-max metadata — the access path of document-order algorithms
/// (WAND, BMW, MaxScore; §3.1).
///
/// The cursor is positioned *on* a posting; a freshly opened cursor is
/// on the first posting. `doc() == None` means the list is exhausted.
pub trait DocCursor: Send {
    /// Current document id, or `None` if exhausted.
    fn doc(&self) -> Option<DocId>;

    /// Term score of the current posting. Undefined after exhaustion.
    fn score(&self) -> u32;

    /// Moves to the next posting. Returns the new current doc.
    fn advance(&mut self) -> Option<DocId>;

    /// Moves to the first posting with `doc >= target` (no-op if
    /// already there). Returns the new current doc. Implementations
    /// use block metadata / binary search to skip efficiently.
    fn seek(&mut self, target: DocId) -> Option<DocId>;

    /// Maximum term score in the block containing the current posting
    /// (0 if exhausted).
    fn block_max_score(&self) -> u32;

    /// Last document id of the current block, i.e. the furthest doc
    /// reachable without entering the next block.
    fn block_last_doc(&self) -> Option<DocId>;

    /// Jumps past the current block: positions on the first posting of
    /// the next block (BMW's "shallow" advance). Returns the new doc.
    fn skip_block(&mut self) -> Option<DocId>;

    /// Block metadata for the block that would contain `target`
    /// (i.e. the first block at/after the current position whose
    /// `last_doc >= target`), *without moving the cursor* — BMW's
    /// "shallow" probe. Returns `(last_doc, max_score)` of that block,
    /// or `None` when `target` lies beyond the list. Block metadata is
    /// RAM-resident in every implementation, so this never performs
    /// I/O.
    fn block_at(&self, target: DocId) -> Option<(DocId, u32)>;

    /// List-wide maximum term score (the WAND/MaxScore upper bound).
    fn max_score(&self) -> u32;

    /// Total list length.
    fn len(&self) -> u64;

    /// Whether the list is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Random access to term scores by document id, backed by a secondary
/// index (§3.2 RA: "given a document id, we can use random access in
/// order to obtain all its term scores"). Costly by design: each call
/// models an I/O request plus cache miss on disk-resident indexes.
pub trait RandomAccess: Send + Sync {
    /// The term score `ts(doc, term)`, or 0 when the document does not
    /// contain the term.
    fn term_score(&self, term: TermId, doc: DocId) -> u32;

    /// Full document score for a set of terms: `Σᵢ ts(doc, tᵢ)`.
    fn full_score(&self, terms: &[TermId], doc: DocId) -> u64 {
        terms
            .iter()
            .map(|&t| u64::from(self.term_score(t, doc)))
            .sum()
    }
}

/// A [`ScoreCursor`] over any holder of a score-ordered posting slice
/// (`&[Posting]`, `Arc<Vec<Posting>>`, …) — shared by the in-memory
/// index, owning cursors for `'static` jobs, and sNRA's materialized
/// shards.
pub struct SliceScoreCursor<T> {
    postings: T,
    pos: usize,
}

impl<T: AsRef<[Posting]>> SliceScoreCursor<T> {
    /// Wraps a score-ordered posting holder.
    pub fn new(postings: T) -> Self {
        debug_assert!(crate::posting::is_score_ordered(postings.as_ref()));
        Self { postings, pos: 0 }
    }

    #[inline]
    fn slice(&self) -> &[Posting] {
        self.postings.as_ref()
    }
}

impl<T: AsRef<[Posting]> + Send> ScoreCursor for SliceScoreCursor<T> {
    #[inline]
    fn next(&mut self) -> Option<Posting> {
        let p = self.slice().get(self.pos).copied();
        if p.is_some() {
            self.pos += 1;
        }
        p
    }

    fn remaining(&self) -> u64 {
        (self.slice().len() - self.pos) as u64
    }

    fn len(&self) -> u64 {
        self.slice().len() as u64
    }

    fn next_segment(&mut self, n: usize, out: &mut Vec<Posting>) -> usize {
        out.clear();
        let end = (self.pos + n).min(self.slice().len());
        out.extend_from_slice(&self.slice()[self.pos..end]);
        let delivered = end - self.pos;
        self.pos = end;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cursor_traverses_in_order() {
        let postings = vec![
            Posting::new(1, 30),
            Posting::new(2, 20),
            Posting::new(3, 10),
        ];
        let mut c = SliceScoreCursor::new(&postings);
        assert_eq!(c.len(), 3);
        assert_eq!(c.remaining(), 3);
        assert_eq!(c.next(), Some(Posting::new(1, 30)));
        assert_eq!(c.remaining(), 2);
        assert_eq!(c.next(), Some(Posting::new(2, 20)));
        assert_eq!(c.next(), Some(Posting::new(3, 10)));
        assert_eq!(c.next(), None);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn slice_cursor_segments() {
        let postings: Vec<Posting> = (0..10u32).map(|i| Posting::new(i, 100 - i)).collect();
        let mut c = SliceScoreCursor::new(&postings);
        let mut seg = Vec::new();
        assert_eq!(c.next_segment(4, &mut seg), 4);
        assert_eq!(seg.len(), 4);
        assert_eq!(seg[0].doc, 0);
        assert_eq!(c.next_segment(4, &mut seg), 4);
        assert_eq!(c.next_segment(4, &mut seg), 2, "final partial segment");
        assert_eq!(c.next_segment(4, &mut seg), 0);
    }
}
