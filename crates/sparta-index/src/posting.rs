//! Posting representation and list invariants.

use sparta_corpus::types::DocId;

/// Number of postings per block-max block. The paper "experimented
/// with multiple block sizes and selected 64, which yielded the best
/// performance" (§5.2.1).
pub const DEFAULT_BLOCK_SIZE: usize = 64;

/// One posting: a document and its integer term score (tf-idf × 10⁶,
/// §5.2). Exactly 8 bytes, the unit of both index orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct Posting {
    /// Document id.
    pub doc: DocId,
    /// Integer term score `ts(D, t)`.
    pub score: u32,
}

impl Posting {
    /// Constructs a posting.
    #[inline]
    pub fn new(doc: DocId, score: u32) -> Self {
        Self { doc, score }
    }
}

/// Block-max metadata for one block of a doc-ordered posting list
/// [Ding & Suel 2011]: the last document id in the block and the
/// maximum term score within it. BMW uses these to skip whole blocks
/// whose maximum cannot beat the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct BlockMeta {
    /// Largest (last) document id in the block.
    pub last_doc: DocId,
    /// Maximum term score within the block.
    pub max_score: u32,
}

/// Checks the doc-order invariant: strictly increasing doc ids.
pub fn is_doc_ordered(postings: &[Posting]) -> bool {
    postings.windows(2).all(|w| w[0].doc < w[1].doc)
}

/// Checks the score-order invariant: non-increasing scores.
pub fn is_score_ordered(postings: &[Posting]) -> bool {
    postings.windows(2).all(|w| w[0].score >= w[1].score)
}

/// Sorts postings into score order: decreasing score, ties broken by
/// increasing doc id (deterministic traversal order).
pub fn sort_score_order(postings: &mut [Posting]) {
    postings.sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.doc.cmp(&b.doc)));
}

/// Sorts postings into doc order.
pub fn sort_doc_order(postings: &mut [Posting]) {
    postings.sort_unstable_by_key(|p| p.doc);
}

/// Computes block-max metadata over a doc-ordered posting list.
pub fn build_blocks(postings: &[Posting], block_size: usize) -> Vec<BlockMeta> {
    assert!(block_size > 0);
    postings
        .chunks(block_size)
        .map(|chunk| BlockMeta {
            last_doc: chunk.last().expect("chunks are non-empty").doc,
            max_score: chunk.iter().map(|p| p.score).max().expect("non-empty"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Posting> {
        vec![
            Posting::new(5, 30),
            Posting::new(1, 50),
            Posting::new(9, 30),
            Posting::new(3, 10),
        ]
    }

    #[test]
    fn posting_is_8_bytes() {
        assert_eq!(std::mem::size_of::<Posting>(), 8);
        assert_eq!(std::mem::size_of::<BlockMeta>(), 8);
    }

    #[test]
    fn sort_orders() {
        let mut p = sample();
        sort_doc_order(&mut p);
        assert!(is_doc_ordered(&p));
        assert_eq!(p[0].doc, 1);
        sort_score_order(&mut p);
        assert!(is_score_ordered(&p));
        assert_eq!(p[0], Posting::new(1, 50));
        // Tie at score 30 broken by doc id.
        assert_eq!(p[1], Posting::new(5, 30));
        assert_eq!(p[2], Posting::new(9, 30));
    }

    #[test]
    fn order_checks_reject_violations() {
        assert!(!is_doc_ordered(&[Posting::new(2, 1), Posting::new(2, 1)]));
        assert!(!is_score_ordered(&[Posting::new(1, 1), Posting::new(2, 5)]));
        assert!(is_doc_ordered(&[]));
        assert!(is_score_ordered(&[Posting::new(1, 7)]));
    }

    #[test]
    fn blocks_cover_list() {
        let mut p = sample();
        sort_doc_order(&mut p);
        let blocks = build_blocks(&p, 3);
        assert_eq!(blocks.len(), 2);
        assert_eq!(
            blocks[0],
            BlockMeta {
                last_doc: 5,
                max_score: 50
            }
        );
        assert_eq!(
            blocks[1],
            BlockMeta {
                last_doc: 9,
                max_score: 30
            }
        );
    }

    #[test]
    fn blocks_of_exact_multiple() {
        let mut p = sample();
        sort_doc_order(&mut p);
        let blocks = build_blocks(&p, 2);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].last_doc, 9);
    }

    #[test]
    fn empty_list_has_no_blocks() {
        assert!(build_blocks(&[], 64).is_empty());
    }
}
