//! Index construction from corpora.
//!
//! This is the preprocessing stage the paper delegates to Lucene
//! (§5.1): converting a corpus into scored posting lists. Raw `(doc,
//! tf)` postings are turned into `(doc, integer term score)` postings
//! by a [`Scorer`], then assembled into an [`InMemoryIndex`] or
//! streamed to an on-disk index.

use crate::compressed::CompressedIndex;
use crate::memory::InMemoryIndex;
use crate::posting::{Posting, DEFAULT_BLOCK_SIZE};
use crate::storage::writer::IndexWriter;
use sparta_corpus::scoring::Scorer;
use sparta_corpus::synth::SynthCorpus;
use sparta_corpus::types::{CorpusStats, DocBag, TermId};
use std::io;
use std::path::Path;

/// Which in-memory posting representation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Uncompressed posting arrays (the paper's §5.1 setup).
    #[default]
    Raw,
    /// Block-compressed postings ([`crate::compressed`]).
    Compressed,
}

impl IndexKind {
    /// Parses a backend name (`"raw"` / `"compressed"`), as accepted
    /// by bench/CLI flags.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "raw" => Some(Self::Raw),
            "compressed" => Some(Self::Compressed),
            _ => None,
        }
    }

    /// The canonical flag/report name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Raw => "raw",
            Self::Compressed => "compressed",
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds indexes from corpora using a pluggable scoring function.
pub struct IndexBuilder<S> {
    scorer: S,
    block_size: usize,
}

impl<S: Scorer> IndexBuilder<S> {
    /// Creates a builder with the paper's block size (64).
    pub fn new(scorer: S) -> Self {
        Self {
            scorer,
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }

    /// Overrides the block-max block size.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size > 0);
        self.block_size = block_size;
        self
    }

    /// Scores one term's raw postings into index postings.
    pub fn score_term(
        &self,
        term: TermId,
        raw: &[(u32, u32)],
        stats: &CorpusStats,
    ) -> Vec<Posting> {
        raw.iter()
            .map(|&(doc, tf)| Posting::new(doc, self.scorer.term_score(tf, doc, term, stats)))
            .collect()
    }

    /// Builds a RAM-resident index from a synthetic corpus.
    pub fn build_memory(&self, corpus: &SynthCorpus) -> InMemoryIndex {
        let stats = corpus.stats();
        let mut terms = Vec::with_capacity(stats.vocab_size());
        corpus.for_each_term(|t, raw| {
            terms.push(self.score_term(t, raw, stats));
        });
        InMemoryIndex::with_block_size(terms, stats.num_docs, self.block_size)
    }

    /// Builds a RAM-resident compressed index from a synthetic corpus.
    pub fn build_compressed(&self, corpus: &SynthCorpus) -> CompressedIndex {
        let stats = corpus.stats();
        let mut terms = Vec::with_capacity(stats.vocab_size());
        corpus.for_each_term(|t, raw| {
            terms.push(self.score_term(t, raw, stats));
        });
        CompressedIndex::with_block_size(terms, stats.num_docs, self.block_size)
    }

    /// Builds the backend selected by `kind`, boxed behind the
    /// [`Index`](crate::Index) trait.
    pub fn build_kind(&self, corpus: &SynthCorpus, kind: IndexKind) -> Box<dyn crate::Index> {
        match kind {
            IndexKind::Raw => Box::new(self.build_memory(corpus)),
            IndexKind::Compressed => Box::new(self.build_compressed(corpus)),
        }
    }

    /// Builds a RAM-resident index from tokenized documents (the
    /// "real text" path used by examples; see
    /// [`sparta_corpus::tokenizer::Tokenizer`]).
    pub fn build_memory_from_bags(&self, bags: &[DocBag], stats: &CorpusStats) -> InMemoryIndex {
        let num_terms = stats.vocab_size();
        let mut raw: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_terms];
        for bag in bags {
            for &(t, tf) in &bag.terms {
                raw[t as usize].push((bag.id, tf));
            }
        }
        let terms = raw
            .iter()
            .enumerate()
            .map(|(t, r)| self.score_term(t as TermId, r, stats))
            .collect();
        InMemoryIndex::with_block_size(terms, stats.num_docs, self.block_size)
    }

    /// Streams a synthetic corpus to an on-disk index at `dir`,
    /// holding only one posting list in memory at a time.
    pub fn write_disk(&self, corpus: &SynthCorpus, dir: impl AsRef<Path>) -> io::Result<()> {
        let stats = corpus.stats();
        let mut writer = IndexWriter::create(
            dir,
            stats.num_docs,
            stats.vocab_size() as u32,
            self.block_size,
        )?;
        let mut failed = None;
        corpus.for_each_term(|t, raw| {
            if failed.is_none() {
                if let Err(e) = writer.add_term(self.score_term(t, raw, stats)) {
                    failed = Some(e);
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iostats::IoModel;
    use crate::storage::reader::DiskIndex;
    use crate::Index;
    use sparta_corpus::scoring::TfIdfScorer;
    use sparta_corpus::synth::CorpusModel;
    use sparta_corpus::tokenizer::Tokenizer;

    #[test]
    fn memory_index_matches_corpus_shape() {
        let corpus = SynthCorpus::build(CorpusModel::tiny(21));
        let ix = IndexBuilder::new(TfIdfScorer).build_memory(&corpus);
        assert_eq!(ix.num_docs(), corpus.stats().num_docs);
        assert_eq!(ix.num_terms() as usize, corpus.stats().vocab_size());
        for t in [0u32, 10, 100] {
            assert_eq!(ix.doc_freq(t), u64::from(corpus.stats().df(t)));
        }
    }

    #[test]
    fn disk_and_memory_builds_agree() {
        let corpus = SynthCorpus::build(CorpusModel::tiny(22));
        let b = IndexBuilder::new(TfIdfScorer);
        let mem = b.build_memory(&corpus);
        let dir = std::env::temp_dir().join(format!("sparta-builder-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        b.write_disk(&corpus, &dir).unwrap();
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        assert_eq!(disk.num_terms(), mem.num_terms());
        for t in (0..mem.num_terms()).step_by(37) {
            let mut a = mem.score_cursor(t);
            let mut d = disk.score_cursor(t);
            loop {
                let (x, y) = (a.next(), d.next());
                assert_eq!(x, y, "term {t}");
                if x.is_none() {
                    break;
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bags_path_builds_consistent_index() {
        let mut tok = Tokenizer::new();
        let texts = [
            "parallel threshold algorithm for retrieval",
            "retrieval retrieval retrieval",
            "threshold tuning in parallel systems",
        ];
        let bags: Vec<DocBag> = texts.iter().map(|t| tok.add_document(t)).collect();
        let stats = tok.stats();
        let ix = IndexBuilder::new(TfIdfScorer).build_memory_from_bags(&bags, &stats);
        let retrieval = tok.term_id("retrieval").unwrap();
        assert_eq!(ix.doc_freq(retrieval), 2);
        // Doc 1 has tf=3 for "retrieval" and a short length: it should
        // outscore doc 0's single occurrence.
        let ra = ix.random_access().unwrap();
        assert!(ra.term_score(retrieval, 1) > ra.term_score(retrieval, 0));
    }

    #[test]
    fn scores_are_applied_per_posting() {
        let corpus = SynthCorpus::build(CorpusModel::tiny(23));
        let b = IndexBuilder::new(TfIdfScorer);
        let stats = corpus.stats();
        let raw = corpus.term_postings(5);
        let scored = b.score_term(5, &raw, stats);
        assert_eq!(scored.len(), raw.len());
        for (p, &(d, tf)) in scored.iter().zip(raw.iter()) {
            assert_eq!(p.doc, d);
            assert_eq!(p.score, TfIdfScorer.term_score(tf, d, 5, stats));
        }
    }
}
