//! Posting-list compression (delta + LEB128 varint).
//!
//! The paper deliberately benchmarks *uncompressed* indexes, arguing
//! from Lin & Trotman [Inf. Retr. 2017] that "given state-of-the-art
//! compression techniques, the impact of decompression on end-to-end
//! performance is marginal (e.g., up to 6% with QMX-D4 compression)"
//! (§5). This module exists to let users of this library check that
//! trade-off for themselves: doc-ordered lists compress document-id
//! *gaps* and raw scores as LEB128 varints (typically 3–4× smaller
//! than the fixed 8-byte encoding), and the `compression` criterion
//! bench measures the decode overhead against a raw scan.
//!
//! Score-ordered lists compress score *gaps* (scores are
//! non-increasing) and raw doc ids.

use crate::posting::{self, Posting};

/// Appends `v` as a LEB128 varint.
#[inline]
pub fn write_varint(mut v: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, returning `(value, bytes_consumed)`.
/// Returns `None` on truncated, overflowing, or non-canonical input.
///
/// A u32 occupies at most 5 LEB128 bytes, and the 5th byte contributes
/// only its low 4 payload bits (`4·7 + 4 = 32`). The 5th-byte check
/// must happen *before* the shift: `value << 28` silently discards
/// high bits in Rust, so a payload with bits above 0xF would otherwise
/// truncate into a wrong — but plausible — u32 long before the
/// too-many-continuation-bytes guard trips. Non-canonical (overlong)
/// encodings — a zero *final* byte after at least one continuation
/// byte, which `write_varint` never emits — are rejected too, so
/// every accepted byte string is the unique encoding of its value.
#[inline]
pub fn read_varint(buf: &[u8]) -> Option<(u32, usize)> {
    let mut v: u32 = 0;
    let mut shift = 0;
    for (i, &b) in buf.iter().enumerate() {
        if shift == 28 && b & 0x70 != 0 {
            return None; // malformed: 5th byte overflows u32
        }
        v |= u32::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            if b == 0 && i > 0 {
                return None; // malformed: overlong (trailing zero byte)
            }
            return Some((v, i + 1));
        }
        shift += 7;
        if shift > 28 {
            return None; // malformed: too many continuation bytes
        }
    }
    None
}

/// Compresses a doc-ordered posting list: doc-id gaps + raw scores,
/// all varint.
///
/// ```
/// use sparta_index::compress::{compress_doc_ordered, decompress_doc_ordered};
/// use sparta_index::Posting;
/// let list = vec![Posting::new(3, 500), Posting::new(9, 200)];
/// let bytes = compress_doc_ordered(&list);
/// assert_eq!(decompress_doc_ordered(&bytes, 2).unwrap(), list);
/// ```
pub fn compress_doc_ordered(postings: &[Posting]) -> Vec<u8> {
    debug_assert!(posting::is_doc_ordered(postings));
    let mut out = Vec::with_capacity(postings.len() * 3);
    let mut prev = 0u32;
    for (i, p) in postings.iter().enumerate() {
        let gap = if i == 0 { p.doc } else { p.doc - prev - 1 };
        write_varint(gap, &mut out);
        write_varint(p.score, &mut out);
        prev = p.doc;
    }
    out
}

/// Decompresses a doc-ordered posting list of `len` postings.
/// Returns `None` on malformed input.
pub fn decompress_doc_ordered(mut buf: &[u8], len: usize) -> Option<Vec<Posting>> {
    let mut out = Vec::with_capacity(len);
    let mut prev = 0u32;
    for i in 0..len {
        let (gap, n) = read_varint(buf)?;
        buf = &buf[n..];
        let (score, n) = read_varint(buf)?;
        buf = &buf[n..];
        let doc = if i == 0 {
            gap
        } else {
            prev.checked_add(gap)?.checked_add(1)?
        };
        out.push(Posting::new(doc, score));
        prev = doc;
    }
    Some(out)
}

/// Compresses a score-ordered posting list: score *drops* (scores are
/// non-increasing) + raw doc ids, all varint.
pub fn compress_score_ordered(postings: &[Posting]) -> Vec<u8> {
    debug_assert!(posting::is_score_ordered(postings));
    let mut out = Vec::with_capacity(postings.len() * 3);
    let mut prev_score: Option<u32> = None;
    for p in postings {
        let drop = match prev_score {
            None => p.score,
            Some(prev) => prev - p.score,
        };
        write_varint(drop, &mut out);
        write_varint(p.doc, &mut out);
        prev_score = Some(p.score);
    }
    out
}

/// Decompresses a score-ordered posting list of `len` postings.
pub fn decompress_score_ordered(mut buf: &[u8], len: usize) -> Option<Vec<Posting>> {
    let mut out = Vec::with_capacity(len);
    let mut prev_score: Option<u32> = None;
    for _ in 0..len {
        let (drop, n) = read_varint(buf)?;
        buf = &buf[n..];
        let (doc, n) = read_varint(buf)?;
        buf = &buf[n..];
        let score = match prev_score {
            None => drop,
            Some(prev) => prev.checked_sub(drop)?,
        };
        out.push(Posting::new(doc, score));
        prev_score = Some(score);
    }
    Some(out)
}

/// A decoding iterator over a compressed score-ordered list — the
/// streaming form algorithms would consume (one posting per `next`,
/// no intermediate vector).
pub struct ScoreOrderedDecoder<'a> {
    buf: &'a [u8],
    remaining: usize,
    prev_score: Option<u32>,
}

impl<'a> ScoreOrderedDecoder<'a> {
    /// Starts decoding `len` postings from `buf`.
    pub fn new(buf: &'a [u8], len: usize) -> Self {
        Self {
            buf,
            remaining: len,
            prev_score: None,
        }
    }
}

impl Iterator for ScoreOrderedDecoder<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let (drop, n) = read_varint(self.buf)?;
        self.buf = &self.buf[n..];
        let (doc, n) = read_varint(self.buf)?;
        self.buf = &self.buf[n..];
        let score = match self.prev_score {
            None => drop,
            Some(prev) => prev.checked_sub(drop)?,
        };
        self.prev_score = Some(score);
        self.remaining -= 1;
        Some(Posting::new(doc, score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for v in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX] {
            buf.clear();
            write_varint(v, &mut buf);
            let (got, n) = read_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        assert!(read_varint(&[]).is_none());
        assert!(read_varint(&[0x80]).is_none(), "truncated continuation");
        assert!(
            read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80]).is_none(),
            "overlong"
        );
    }

    #[test]
    fn varint_rejects_fifth_byte_overflow() {
        // Regression: a 5th byte with payload bits above 0xF used to
        // silently truncate (`v << 28` drops high bits) into a wrong
        // but plausible u32 before the continuation-count guard fired.
        // 0x10 is the lowest overflowing payload bit.
        assert!(read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x10]).is_none());
        assert!(read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x7F]).is_none());
        // The same payload spread over continuation: rejected by count.
        assert!(read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x90, 0x01]).is_none());
        // The maximum valid 5-byte encoding still decodes.
        assert_eq!(
            read_varint(&[0xFF, 0xFF, 0xFF, 0xFF, 0x0F]),
            Some((u32::MAX, 5))
        );
    }

    #[test]
    fn varint_rejects_non_canonical_trailing_zero() {
        // [0x80, 0x00] would decode to 0, but 0 encodes as [0x00]:
        // accepting both would make encodings ambiguous.
        assert!(read_varint(&[0x80, 0x00]).is_none());
        assert!(read_varint(&[0xFF, 0x80, 0x00]).is_none());
        assert_eq!(read_varint(&[0x00]), Some((0, 1)));
        // Zero-payload *continuation* bytes are canonical and must
        // stay accepted: 16384 == [0x80, 0x80, 0x01].
        let mut buf = Vec::new();
        write_varint(16_384, &mut buf);
        assert_eq!(buf, [0x80, 0x80, 0x01]);
        assert_eq!(read_varint(&buf), Some((16_384, 3)));
    }

    #[test]
    fn varint_every_accepted_encoding_is_canonical() {
        // Exhaustive over all 1- and 2-byte inputs: decode(buf) == v
        // implies encode(v) == buf.
        let mut enc = Vec::new();
        for b0 in 0..=255u8 {
            let one = [b0];
            if let Some((v, n)) = read_varint(&one) {
                enc.clear();
                write_varint(v, &mut enc);
                assert_eq!(enc, &one[..n], "value {v}");
            }
            for b1 in 0..=255u8 {
                let two = [b0, b1];
                if let Some((v, n)) = read_varint(&two) {
                    enc.clear();
                    write_varint(v, &mut enc);
                    assert_eq!(enc, &two[..n], "value {v}");
                }
            }
        }
    }

    fn sample_doc_ordered() -> Vec<Posting> {
        (0..500u32)
            .map(|i| Posting::new(i * 7 + i % 3, i.wrapping_mul(2654435761) % 1_000_000 + 1))
            .collect()
    }

    #[test]
    fn doc_ordered_round_trip() {
        let ps = sample_doc_ordered();
        let buf = compress_doc_ordered(&ps);
        assert!(
            buf.len() < ps.len() * 8,
            "compressed {} >= raw {}",
            buf.len(),
            ps.len() * 8
        );
        assert_eq!(decompress_doc_ordered(&buf, ps.len()).unwrap(), ps);
    }

    #[test]
    fn score_ordered_round_trip() {
        let mut ps = sample_doc_ordered();
        posting::sort_score_order(&mut ps);
        let buf = compress_score_ordered(&ps);
        assert_eq!(decompress_score_ordered(&buf, ps.len()).unwrap(), ps);
        // Streaming decoder agrees.
        let streamed: Vec<Posting> = ScoreOrderedDecoder::new(&buf, ps.len()).collect();
        assert_eq!(streamed, ps);
    }

    #[test]
    fn dense_gaps_compress_well() {
        // Consecutive doc ids → gap 0 → 1 byte; 3-byte scores →
        // 4 bytes per posting: exactly 2× compression.
        let ps: Vec<Posting> = (0..1000u32)
            .map(|i| Posting::new(i, 50_000 + i % 100))
            .collect();
        let buf = compress_doc_ordered(&ps);
        assert!(buf.len() * 2 <= ps.len() * 8, "{} bytes", buf.len());
    }

    #[test]
    fn empty_and_single_posting() {
        assert_eq!(decompress_doc_ordered(&[], 0).unwrap(), vec![]);
        let one = vec![Posting::new(42, 7)];
        let buf = compress_doc_ordered(&one);
        assert_eq!(decompress_doc_ordered(&buf, 1).unwrap(), one);
    }

    #[test]
    fn corrupt_input_returns_none() {
        let ps = sample_doc_ordered();
        let buf = compress_doc_ordered(&ps);
        assert!(decompress_doc_ordered(&buf[..buf.len() / 2], ps.len()).is_none());
    }
}
