//! Inverted index substrate for Sparta.
//!
//! Search algorithms "use a preprocessed inverted index of the corpus.
//! The index is organized according to terms and holds a posting list
//! of all documents associated with each term" (§3.1). This crate
//! provides:
//!
//! * [`Posting`] / posting-list invariants ([`posting`]);
//! * the [`Index`] trait unifying the three access paths the paper's
//!   algorithm families need:
//!   * **score-order cursors** (TA family, JASS) — postings sorted by
//!     decreasing term score,
//!   * **doc-order cursors with block-max metadata** (WAND, BMW,
//!     MaxScore) — postings sorted by document id, with per-block
//!     maximum scores for skipping [Ding & Suel 2011],
//!   * **random access** (RA) — `ts(D, t)` lookups by document id via
//!     a secondary index;
//! * [`memory::InMemoryIndex`] — RAM-resident implementation;
//! * [`storage`] — an uncompressed binary on-disk format ("stored on
//!   disk uncompressed as a collection of binary files", §5.1) read in
//!   fixed-size blocks through an I/O layer that counts block fetches
//!   and can charge a configurable latency per sequential block and
//!   per random access, standing in for the paper's SSD with a flushed
//!   page cache;
//! * [`builder::IndexBuilder`] — builds either representation from a
//!   corpus + scorer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod compress;
pub mod compressed;
pub mod cursor;
pub mod iostats;
pub mod memory;
pub mod posting;
pub mod storage;

pub use builder::{IndexBuilder, IndexKind};
pub use compressed::{BoundMode, CompressedIndex, CompressedTermData, ScoreQuantizer};
pub use cursor::{DocCursor, RandomAccess, ScoreCursor};
pub use iostats::{IoModel, IoStats};
pub use memory::InMemoryIndex;
pub use posting::{BlockMeta, Posting, DEFAULT_BLOCK_SIZE};
pub use storage::reader::DiskIndex;

use sparta_corpus::types::TermId;
use std::sync::Arc;

/// In-memory size of an index's posting storage, split into the
/// posting planes themselves and the lookup metadata (block directory,
/// score codebooks, quantization params).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexFootprint {
    /// Bytes holding postings (raw arrays or packed planes).
    pub posting_bytes: u64,
    /// Bytes of per-term/per-block metadata.
    pub metadata_bytes: u64,
}

impl IndexFootprint {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.posting_bytes + self.metadata_bytes
    }
}

/// A queryable inverted index.
///
/// All methods take `&self` and implementations are `Sync`: one index
/// serves many concurrent queries, and one query opens independent
/// cursors from multiple worker threads.
pub trait Index: Send + Sync {
    /// Total number of documents N in the corpus.
    fn num_docs(&self) -> u64;

    /// Number of terms in the dictionary.
    fn num_terms(&self) -> u32;

    /// Length of `term`'s posting list (0 for unknown terms).
    fn doc_freq(&self, term: TermId) -> u64;

    /// The maximum term score in `term`'s posting list (0 if empty) —
    /// the list-wide upper bound used by WAND/MaxScore and available
    /// from the dictionary without touching postings.
    fn max_score(&self, term: TermId) -> u32;

    /// Opens a cursor over `term`'s postings in decreasing-score order.
    fn score_cursor(&self, term: TermId) -> Box<dyn ScoreCursor + '_>;

    /// Opens a cursor over `term`'s postings in increasing-doc-id
    /// order, with block-max metadata.
    fn doc_cursor(&self, term: TermId) -> Box<dyn DocCursor + '_>;

    /// Owning variant of [`score_cursor`](Self::score_cursor): the
    /// cursor keeps the index alive via `Arc`, so it can be moved into
    /// `'static` jobs running on persistent worker-pool threads.
    fn score_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn ScoreCursor>;

    /// Owning variant of [`doc_cursor`](Self::doc_cursor).
    fn doc_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn DocCursor>;

    /// Random access: the secondary index mapping `(term, doc)` to the
    /// term score, if this index maintains one. RA-family algorithms
    /// require it; NRA-family ones must not use it.
    fn random_access(&self) -> Option<&dyn RandomAccess>;

    /// I/O statistics accumulated by this index's cursors, if it
    /// performs (simulated) I/O. In-memory indexes return `None`.
    fn io_stats(&self) -> Option<&IoStats>;

    /// In-memory posting-storage footprint, if this backend can report
    /// one (RAM-resident backends do; the disk reader does not).
    fn footprint(&self) -> Option<IndexFootprint> {
        None
    }
}
