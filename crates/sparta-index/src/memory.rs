//! RAM-resident index implementation.
//!
//! Posting lists are plain contiguous arrays ("Posting lists are
//! stored as contiguous uncompressed arrays", §5.2) in both score
//! order and doc order, plus block-max metadata. Random access is a
//! binary search over the doc-ordered list — the in-memory analogue of
//! the paper's secondary docid→position index.

use crate::cursor::{DocCursor, RandomAccess, ScoreCursor, SliceScoreCursor};
use crate::posting::{self, BlockMeta, Posting, DEFAULT_BLOCK_SIZE};
use crate::{Index, IoStats};
use sparta_corpus::types::{DocId, TermId};
use std::sync::Arc;

/// Per-term data: both orders plus block metadata.
#[derive(Debug, Clone)]
pub struct TermData {
    /// Postings in decreasing-score order.
    pub score_order: Arc<Vec<Posting>>,
    /// Postings in increasing-doc order.
    pub doc_order: Arc<Vec<Posting>>,
    /// Block-max metadata over `doc_order`.
    pub blocks: Arc<Vec<BlockMeta>>,
    /// List-wide maximum score.
    pub max_score: u32,
}

impl TermData {
    /// Builds per-term data from postings in any order.
    pub fn from_postings(mut postings: Vec<Posting>, block_size: usize) -> Self {
        posting::sort_doc_order(&mut postings);
        let blocks = posting::build_blocks(&postings, block_size);
        let max_score = postings.iter().map(|p| p.score).max().unwrap_or(0);
        let mut score_order = postings.clone();
        posting::sort_score_order(&mut score_order);
        Self {
            score_order: Arc::new(score_order),
            doc_order: Arc::new(postings),
            blocks: Arc::new(blocks),
            max_score,
        }
    }
}

/// An entirely RAM-resident [`Index`].
pub struct InMemoryIndex {
    terms: Vec<TermData>,
    num_docs: u64,
    block_size: usize,
}

impl InMemoryIndex {
    /// Assembles an index from per-term posting vectors (any order).
    /// `terms[t]` becomes the posting list of term `t`.
    pub fn from_term_postings(terms: Vec<Vec<Posting>>, num_docs: u64) -> Self {
        Self::with_block_size(terms, num_docs, DEFAULT_BLOCK_SIZE)
    }

    /// As [`from_term_postings`](Self::from_term_postings) with an
    /// explicit block size.
    pub fn with_block_size(terms: Vec<Vec<Posting>>, num_docs: u64, block_size: usize) -> Self {
        let terms = terms
            .into_iter()
            .map(|p| TermData::from_postings(p, block_size))
            .collect();
        Self {
            terms,
            num_docs,
            block_size,
        }
    }

    /// Block size used for block-max metadata.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Direct access to a term's data (empty static data for unknown
    /// terms is not provided here; use [`Index`] methods for safety).
    pub fn term_data(&self, term: TermId) -> Option<&TermData> {
        self.terms.get(term as usize)
    }

    /// Materializes a doc-id-sharded view for shared-nothing
    /// parallelization (sNRA, §5.2.2): shard `i` of `n` receives the
    /// postings of documents `d` with `d % n == i`, in both orders.
    /// Only the given `terms` are materialized (a query touches m
    /// lists, so this is O(Σ df(tᵢ)) — the paper pre-builds shards
    /// offline; we exclude this cost from measured query latency).
    pub fn shard_for_terms(&self, terms: &[TermId], shards: usize) -> Vec<InMemoryIndex> {
        assert!(shards > 0);
        let max_term = terms.iter().map(|&t| t as usize + 1).max().unwrap_or(0);
        let mut per_shard: Vec<Vec<Vec<Posting>>> =
            (0..shards).map(|_| vec![Vec::new(); max_term]).collect();
        for &t in terms {
            if let Some(td) = self.term_data(t) {
                for &p in td.doc_order.iter() {
                    per_shard[(p.doc as usize) % shards][t as usize].push(p);
                }
            }
        }
        per_shard
            .into_iter()
            .map(|term_postings| {
                InMemoryIndex::with_block_size(term_postings, self.num_docs, self.block_size)
            })
            .collect()
    }
}

impl Index for InMemoryIndex {
    fn num_docs(&self) -> u64 {
        self.num_docs
    }

    fn num_terms(&self) -> u32 {
        self.terms.len() as u32
    }

    fn doc_freq(&self, term: TermId) -> u64 {
        self.term_data(term).map_or(0, |t| t.doc_order.len() as u64)
    }

    fn max_score(&self, term: TermId) -> u32 {
        self.term_data(term).map_or(0, |t| t.max_score)
    }

    fn score_cursor(&self, term: TermId) -> Box<dyn ScoreCursor + '_> {
        match self.term_data(term) {
            Some(t) => Box::new(SliceScoreCursor::new(t.score_order.as_slice())),
            None => Box::new(SliceScoreCursor::new(&[])),
        }
    }

    fn doc_cursor(&self, term: TermId) -> Box<dyn DocCursor + '_> {
        static EMPTY: (Vec<Posting>, Vec<BlockMeta>) = (Vec::new(), Vec::new());
        match self.term_data(term) {
            Some(t) => Box::new(SliceDocCursor::new(
                t.doc_order.as_slice(),
                t.blocks.as_slice(),
                self.block_size,
                t.max_score,
            )),
            None => Box::new(SliceDocCursor::new(&EMPTY.0, &EMPTY.1, self.block_size, 0)),
        }
    }

    fn score_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn ScoreCursor> {
        match self.term_data(term) {
            Some(t) => Box::new(SliceScoreCursor::new(ArcPostings(Arc::clone(
                &t.score_order,
            )))),
            None => Box::new(SliceScoreCursor::new(ArcPostings(Arc::new(Vec::new())))),
        }
    }

    fn doc_cursor_arc(self: Arc<Self>, term: TermId) -> Box<dyn DocCursor> {
        match self.term_data(term) {
            Some(t) => Box::new(SliceDocCursor::new(
                ArcPostings(Arc::clone(&t.doc_order)),
                ArcBlocks(Arc::clone(&t.blocks)),
                self.block_size,
                t.max_score,
            )),
            None => Box::new(SliceDocCursor::new(
                ArcPostings(Arc::new(Vec::new())),
                ArcBlocks(Arc::new(Vec::new())),
                self.block_size,
                0,
            )),
        }
    }

    fn random_access(&self) -> Option<&dyn RandomAccess> {
        Some(self)
    }

    fn io_stats(&self) -> Option<&IoStats> {
        None
    }

    fn footprint(&self) -> Option<crate::IndexFootprint> {
        let mut f = crate::IndexFootprint::default();
        for t in &self.terms {
            // Both orders at 8 bytes per posting.
            f.posting_bytes += (t.score_order.len() + t.doc_order.len()) as u64 * 8;
            // Block directory + the list-wide max.
            f.metadata_bytes += t.blocks.len() as u64 * 8 + 4;
        }
        Some(f)
    }
}

/// `AsRef<[Posting]>` adapter over a shared posting vector.
pub struct ArcPostings(pub Arc<Vec<Posting>>);

impl AsRef<[Posting]> for ArcPostings {
    fn as_ref(&self) -> &[Posting] {
        self.0.as_slice()
    }
}

/// `AsRef<[BlockMeta]>` adapter over shared block metadata.
pub struct ArcBlocks(pub Arc<Vec<BlockMeta>>);

impl AsRef<[BlockMeta]> for ArcBlocks {
    fn as_ref(&self) -> &[BlockMeta] {
        self.0.as_slice()
    }
}

impl RandomAccess for InMemoryIndex {
    fn term_score(&self, term: TermId, doc: DocId) -> u32 {
        match self.term_data(term) {
            Some(t) => match t.doc_order.binary_search_by_key(&doc, |p| p.doc) {
                Ok(i) => t.doc_order[i].score,
                Err(_) => 0,
            },
            None => 0,
        }
    }
}

/// A [`DocCursor`] over any holders of doc-ordered postings + block
/// metadata (`&[…]` for borrowed use, `Arc<Vec<…>>` for owning use).
pub struct SliceDocCursor<P, B> {
    postings: P,
    blocks: B,
    block_size: usize,
    max_score: u32,
    pos: usize,
}

impl<P: AsRef<[Posting]>, B: AsRef<[BlockMeta]>> SliceDocCursor<P, B> {
    /// Wraps doc-ordered postings and their block metadata.
    pub fn new(postings: P, blocks: B, block_size: usize, max_score: u32) -> Self {
        debug_assert!(posting::is_doc_ordered(postings.as_ref()));
        debug_assert_eq!(
            blocks.as_ref().len(),
            postings.as_ref().len().div_ceil(block_size)
        );
        Self {
            postings,
            blocks,
            block_size,
            max_score,
            pos: 0,
        }
    }

    #[inline]
    fn ps(&self) -> &[Posting] {
        self.postings.as_ref()
    }

    #[inline]
    fn bs(&self) -> &[BlockMeta] {
        self.blocks.as_ref()
    }

    #[inline]
    fn block_idx(&self) -> usize {
        self.pos / self.block_size
    }
}

impl<P: AsRef<[Posting]> + Send, B: AsRef<[BlockMeta]> + Send> DocCursor for SliceDocCursor<P, B> {
    #[inline]
    fn doc(&self) -> Option<DocId> {
        self.ps().get(self.pos).map(|p| p.doc)
    }

    #[inline]
    fn score(&self) -> u32 {
        self.ps().get(self.pos).map_or(0, |p| p.score)
    }

    fn advance(&mut self) -> Option<DocId> {
        if self.pos < self.ps().len() {
            self.pos += 1;
        }
        self.doc()
    }

    fn seek(&mut self, target: DocId) -> Option<DocId> {
        if let Some(d) = self.doc() {
            if d >= target {
                return Some(d);
            }
        } else {
            return None;
        }
        // Use block metadata to find the block, then binary search in it.
        let bi = self.bs()[self.block_idx()..].partition_point(|b| b.last_doc < target)
            + self.block_idx();
        if bi >= self.bs().len() {
            self.pos = self.ps().len();
            return None;
        }
        let start = (bi * self.block_size).max(self.pos);
        let end = ((bi + 1) * self.block_size).min(self.ps().len());
        let inner = self.ps()[start..end].partition_point(|p| p.doc < target);
        self.pos = start + inner;
        debug_assert!(self.pos < self.ps().len());
        self.doc()
    }

    fn block_at(&self, target: DocId) -> Option<(DocId, u32)> {
        if self.pos >= self.ps().len() {
            return None;
        }
        let from = self.block_idx();
        let bi = from + self.bs()[from..].partition_point(|b| b.last_doc < target);
        self.bs().get(bi).map(|b| (b.last_doc, b.max_score))
    }

    fn block_max_score(&self) -> u32 {
        if self.pos >= self.ps().len() {
            return 0;
        }
        self.bs().get(self.block_idx()).map_or(0, |b| b.max_score)
    }

    fn block_last_doc(&self) -> Option<DocId> {
        if self.pos >= self.ps().len() {
            return None;
        }
        self.bs().get(self.block_idx()).map(|b| b.last_doc)
    }

    fn skip_block(&mut self) -> Option<DocId> {
        let next = (self.block_idx() + 1) * self.block_size;
        self.pos = next.min(self.ps().len());
        self.doc()
    }

    fn max_score(&self) -> u32 {
        self.max_score
    }

    fn len(&self) -> u64 {
        self.ps().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InMemoryIndex {
        // term 0: docs 0,2,4,...,18 score = 100 - doc
        // term 1: docs 0..5 score = 10*doc+1
        let t0: Vec<Posting> = (0..10u32)
            .map(|i| Posting::new(2 * i, 100 - 2 * i))
            .collect();
        let t1: Vec<Posting> = (0..5u32).map(|i| Posting::new(i, 10 * i + 1)).collect();
        InMemoryIndex::with_block_size(vec![t0, t1], 20, 4)
    }

    #[test]
    fn dictionary_stats() {
        let ix = index();
        assert_eq!(ix.num_docs(), 20);
        assert_eq!(ix.num_terms(), 2);
        assert_eq!(ix.doc_freq(0), 10);
        assert_eq!(ix.doc_freq(1), 5);
        assert_eq!(ix.doc_freq(7), 0, "unknown term");
        assert_eq!(ix.max_score(0), 100);
        assert_eq!(ix.max_score(1), 41);
    }

    #[test]
    fn score_cursor_is_descending() {
        let ix = index();
        let mut c = ix.score_cursor(1);
        let mut last = u32::MAX;
        while let Some(p) = c.next() {
            assert!(p.score <= last);
            last = p.score;
        }
        assert_eq!(last, 1);
    }

    #[test]
    fn doc_cursor_advance_and_seek() {
        let ix = index();
        let mut c = ix.doc_cursor(0);
        assert_eq!(c.doc(), Some(0));
        assert_eq!(c.advance(), Some(2));
        assert_eq!(c.seek(9), Some(10));
        assert_eq!(c.score(), 90);
        assert_eq!(c.seek(10), Some(10), "seek to current is a no-op");
        assert_eq!(c.seek(18), Some(18));
        assert_eq!(c.seek(19), None, "past the end");
        assert_eq!(c.doc(), None);
    }

    #[test]
    fn doc_cursor_block_metadata() {
        let ix = index();
        let mut c = ix.doc_cursor(0);
        // Block size 4: docs [0,2,4,6][8,10,12,14][16,18].
        assert_eq!(c.block_last_doc(), Some(6));
        assert_eq!(c.block_max_score(), 100);
        assert_eq!(c.skip_block(), Some(8));
        assert_eq!(c.block_last_doc(), Some(14));
        assert_eq!(c.block_max_score(), 100 - 8);
        assert_eq!(c.skip_block(), Some(16));
        assert_eq!(c.skip_block(), None);
    }

    #[test]
    fn random_access_lookup() {
        let ix = index();
        let ra = ix.random_access().unwrap();
        assert_eq!(ra.term_score(0, 4), 96);
        assert_eq!(ra.term_score(0, 5), 0, "doc absent from list");
        assert_eq!(ra.term_score(1, 3), 31);
        assert_eq!(ra.term_score(9, 3), 0, "unknown term");
        assert_eq!(ra.full_score(&[0, 1], 4), 96 + 41);
        assert_eq!(ra.full_score(&[0, 1], 3), 31, "term 0 contributes nothing");
    }

    #[test]
    fn sharding_partitions_postings() {
        let ix = index();
        let shards = ix.shard_for_terms(&[0, 1], 3);
        assert_eq!(shards.len(), 3);
        let total: u64 = shards.iter().map(|s| s.doc_freq(0)).sum();
        assert_eq!(total, ix.doc_freq(0));
        for (i, s) in shards.iter().enumerate() {
            let mut c = s.doc_cursor(0);
            while let Some(d) = c.doc() {
                assert_eq!(d as usize % 3, i, "doc {d} in wrong shard");
                c.advance();
            }
        }
    }

    #[test]
    fn empty_term_cursors_are_safe() {
        let ix = index();
        let mut sc = ix.score_cursor(9);
        assert_eq!(sc.next(), None);
        assert!(sc.is_empty());
        let mut dc = ix.doc_cursor(9);
        assert_eq!(dc.doc(), None);
        assert_eq!(dc.advance(), None);
        assert_eq!(dc.seek(5), None);
        assert_eq!(dc.skip_block(), None);
    }
}
