//! Property tests for cursor semantics: `seek` must agree with a
//! linear-scan reference, block metadata must bound its block, and
//! random access must agree with the doc-ordered list, over arbitrary
//! posting lists and block sizes — on both index backends.

use proptest::collection::vec;
use proptest::prelude::*;
use sparta_index::storage::IndexWriter;
use sparta_index::{DiskIndex, InMemoryIndex, Index, IoModel, Posting};

fn arb_list() -> impl Strategy<Value = Vec<Posting>> {
    vec((0u32..2000, 1u32..100_000), 0..300).prop_map(|mut ps| {
        ps.sort_by_key(|&(d, _)| d);
        ps.dedup_by_key(|&mut (d, _)| d);
        ps.into_iter().map(|(d, s)| Posting::new(d, s)).collect()
    })
}

/// Reference: first posting with doc >= target, by linear scan.
fn ref_seek(list: &[Posting], from: usize, target: u32) -> Option<(usize, Posting)> {
    list.iter()
        .enumerate()
        .skip(from)
        .find(|(_, p)| p.doc >= target)
        .map(|(i, p)| (i, *p))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn seek_matches_linear_reference(
        list in arb_list(),
        targets in vec(0u32..2100, 0..20),
        block_size in 1usize..100
    ) {
        let ix = InMemoryIndex::with_block_size(vec![list.clone()], 2000, block_size);
        let mut cursor = ix.doc_cursor(0);
        let mut targets = targets;
        targets.sort_unstable(); // cursors only move forward
        let mut pos = 0usize;
        for t in targets {
            let got = cursor.seek(t);
            let want = ref_seek(&list, pos, t);
            prop_assert_eq!(got, want.map(|(_, p)| p.doc), "seek({})", t);
            if let Some((i, p)) = want {
                pos = i;
                prop_assert_eq!(cursor.score(), p.score);
            } else {
                prop_assert_eq!(cursor.doc(), None);
                break;
            }
        }
    }

    #[test]
    fn block_metadata_bounds_hold(list in arb_list(), block_size in 1usize..64) {
        let ix = InMemoryIndex::with_block_size(vec![list.clone()], 2000, block_size);
        let mut c = ix.doc_cursor(0);
        let mut idx = 0usize;
        while let Some(d) = c.doc() {
            let block = idx / block_size;
            let chunk = &list[block * block_size..((block + 1) * block_size).min(list.len())];
            let want_last = chunk.last().unwrap().doc;
            let want_max = chunk.iter().map(|p| p.score).max().unwrap();
            prop_assert_eq!(c.block_last_doc(), Some(want_last), "at doc {}", d);
            prop_assert_eq!(c.block_max_score(), want_max);
            // block_at on the current doc describes the current block.
            prop_assert_eq!(c.block_at(d), Some((want_last, want_max)));
            c.advance();
            idx += 1;
        }
    }

    #[test]
    fn random_access_matches_list(list in arb_list(), probes in vec(0u32..2100, 1..30)) {
        let ix = InMemoryIndex::from_term_postings(vec![list.clone()], 2000);
        let ra = ix.random_access().unwrap();
        for d in probes {
            let want = list.iter().find(|p| p.doc == d).map_or(0, |p| p.score);
            prop_assert_eq!(ra.term_score(0, d), want, "doc {}", d);
        }
    }

    #[test]
    fn disk_cursor_seek_matches_memory(
        list in arb_list(),
        targets in vec(0u32..2100, 0..12)
    ) {
        let dir = std::env::temp_dir().join(format!(
            "sparta-cursor-prop-{}-{}",
            std::process::id(),
            list.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut w = IndexWriter::create(&dir, 2000, 1, 16).unwrap();
            w.add_term(list.clone()).unwrap();
            w.finish().unwrap();
        }
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        let mem = InMemoryIndex::with_block_size(vec![list], 2000, 16);
        let mut a = disk.doc_cursor(0);
        let mut b = mem.doc_cursor(0);
        let mut targets = targets;
        targets.sort_unstable();
        for t in targets {
            prop_assert_eq!(a.seek(t), b.seek(t), "seek({})", t);
            prop_assert_eq!(a.score(), b.score());
            prop_assert_eq!(a.block_at(t), b.block_at(t));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
