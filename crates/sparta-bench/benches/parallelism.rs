//! Criterion bench for Figures 3h/3i: 12-term query latency as a
//! function of intra-query parallelism.
//!
//! Note: on a single-core host thread sweeps measure scheduling
//! overhead, not hardware speedup — the work-based invariance (same
//! results at every thread count) is verified by the integration
//! tests; the wall-clock sweep is still reported for completeness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparta_bench::{Dataset, Scale, VariantParams};
use sparta_core::algorithm_by_name;
use sparta_exec::DedicatedExecutor;
use std::time::Duration;

fn ensure_scale() {
    if std::env::var_os("SPARTA_DOCS").is_none() {
        let docs = std::env::var("SPARTA_BENCH_DOCS").unwrap_or_else(|_| "5000".into());
        std::env::set_var("SPARTA_DOCS", docs);
    }
}

fn bench_thread_sweep(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let cfg = VariantParams::high().config(ds.k);
    let queries = ds.queries_of_length(12, 8).to_vec();
    let mut g = c.benchmark_group("fig3h_parallelism");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for name in ["sparta", "pbmw"] {
        let algo = algorithm_by_name(name).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let exec = DedicatedExecutor::new(threads);
            g.bench_with_input(BenchmarkId::new(name, threads), &threads, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    algo.search(&ds.index, q, &cfg, &exec)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_thread_sweep);
criterion_main!(benches);
