//! Storage-layer benches: sequential posting scans vs random accesses
//! on the disk index — the access-cost asymmetry behind pRA's collapse
//! on disk-resident indexes (§5.3).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparta_corpus::scoring::TfIdfScorer;
use sparta_corpus::synth::{CorpusModel, SynthCorpus};
use sparta_index::{DiskIndex, Index, IndexBuilder, IoModel, RandomAccess};
use std::path::PathBuf;
use std::time::Duration;

fn disk_index(model: IoModel) -> (DiskIndex, PathBuf) {
    let dir = std::env::temp_dir().join(format!("sparta-bench-disk-{}", std::process::id()));
    if !dir.join("meta.bin").exists() {
        let corpus = SynthCorpus::build(CorpusModel {
            num_docs: 20_000,
            vocab_size: 2_000,
            zipf_exponent: 1.0,
            max_rate: 0.25,
            target_avg_doc_len: 150.0,
            seed: 4,
        });
        IndexBuilder::new(TfIdfScorer)
            .write_disk(&corpus, &dir)
            .unwrap();
    }
    (DiskIndex::open(&dir, model).unwrap(), dir)
}

fn bench_disk_access(c: &mut Criterion) {
    let (free, _dir) = disk_index(IoModel::free());
    let (ssd, _dir) = disk_index(IoModel::ssd());
    // A head term with a long list.
    let term = (0..free.num_terms())
        .max_by_key(|&t| free.doc_freq(t))
        .unwrap();
    let len = free.doc_freq(term);

    let mut g = c.benchmark_group("disk_io");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    g.throughput(Throughput::Elements(len));
    g.bench_function("sequential_scan_free", |b| {
        b.iter(|| {
            let mut c = free.score_cursor(term);
            let mut sum = 0u64;
            while let Some(p) = c.next() {
                sum += u64::from(p.score);
            }
            std::hint::black_box(sum)
        });
    });
    g.bench_function("sequential_scan_ssd_model", |b| {
        b.iter(|| {
            let mut c = ssd.score_cursor(term);
            let mut sum = 0u64;
            while let Some(p) = c.next() {
                sum += u64::from(p.score);
            }
            std::hint::black_box(sum)
        });
    });

    const LOOKUPS: u64 = 256;
    g.throughput(Throughput::Elements(LOOKUPS));
    g.bench_function("random_access_free", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..LOOKUPS {
                let doc = (i * 2654435761) % free.num_docs();
                sum += u64::from(free.term_score(term, doc as u32));
            }
            std::hint::black_box(sum)
        });
    });
    g.bench_function("random_access_ssd_model", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..LOOKUPS {
                let doc = (i * 2654435761) % ssd.num_docs();
                sum += u64::from(ssd.term_score(term, doc as u32));
            }
            std::hint::black_box(sum)
        });
    });
    g.finish();
}

/// Decompression overhead vs raw scans — the §5 claim that
/// "the impact of decompression on end-to-end performance is
/// marginal" checked on this implementation's varint codec.
fn bench_compression(c: &mut Criterion) {
    use sparta_index::compress;
    use sparta_index::Posting;
    let postings: Vec<Posting> = (0..100_000u32)
        .map(|i| Posting::new(i * 3 + i % 2, (i.wrapping_mul(2654435761)) % 1_000_000 + 1))
        .collect();
    let mut score_ordered = postings.clone();
    sparta_index::posting::sort_score_order(&mut score_ordered);
    let compressed = compress::compress_score_ordered(&score_ordered);
    println!(
        "compression ratio: {} raw -> {} compressed ({:.2}x)",
        postings.len() * 8,
        compressed.len(),
        (postings.len() * 8) as f64 / compressed.len() as f64
    );
    let mut g = c.benchmark_group("compression");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(postings.len() as u64));
    g.bench_function("raw_scan", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for p in &score_ordered {
                sum += u64::from(p.score);
            }
            std::hint::black_box(sum)
        });
    });
    g.bench_function("decode_scan", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for p in compress::ScoreOrderedDecoder::new(&compressed, score_ordered.len()) {
                sum += u64::from(p.score);
            }
            std::hint::black_box(sum)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_disk_access, bench_compression);
criterion_main!(benches);
