//! Ablation benches for Sparta's design choices (DESIGN.md §6):
//! segment size (lazy-UB granularity), Φ (term-local map threshold).
//! pNRA itself — the all-optimizations-off ablation — is benched in
//! `algorithms.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparta_bench::{Dataset, Scale, VariantParams};
use sparta_core::sparta::Sparta;
use sparta_core::Algorithm;
use sparta_exec::DedicatedExecutor;
use std::time::Duration;

fn ensure_scale() {
    if std::env::var_os("SPARTA_DOCS").is_none() {
        let docs = std::env::var("SPARTA_BENCH_DOCS").unwrap_or_else(|_| "5000".into());
        std::env::set_var("SPARTA_DOCS", docs);
    }
}

/// Segment-size sweep: seg = 1 is the per-posting-UB ablation.
fn bench_seg_size(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let exec = DedicatedExecutor::new(4);
    let queries = ds.queries_of_length(12, 6).to_vec();
    let mut g = c.benchmark_group("ablation_seg_size");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for seg in [1usize, 64, 1024, 16384] {
        let cfg = VariantParams::exact().config(ds.k).with_seg_size(seg);
        g.bench_with_input(BenchmarkId::from_parameter(seg), &seg, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                Sparta.search(&ds.index, q, &cfg, &exec)
            });
        });
    }
    g.finish();
}

/// Φ sweep: Φ = 0 disables term-local maps entirely.
fn bench_phi(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let exec = DedicatedExecutor::new(4);
    let queries = ds.queries_of_length(12, 6).to_vec();
    let mut g = c.benchmark_group("ablation_phi");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for phi in [0usize, 1_000, 10_000, 100_000] {
        let cfg = VariantParams::exact().config(ds.k).with_phi(phi);
        g.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                Sparta.search(&ds.index, q, &cfg, &exec)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_seg_size, bench_phi);
criterion_main!(benches);
