//! Substrate micro-benches: the striped map against a single-mutex
//! map (the paper's granular-lock claim, §4.3), heap offers, swap-cell
//! snapshots, the doc-id hasher against SipHash, and slab admission
//! against per-document `Arc` allocation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use sparta_collections::{BoundedTopK, FastBuildHasher, StripedMap, SwapCell};
use sparta_core::sparta::doc_slab::DocSlab;
use sparta_core::sparta::doc_type::DocType;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::Arc;
use std::time::Duration;

/// Striped map vs one big mutex, under concurrent mixed load.
fn bench_striped_vs_mutex(c: &mut Criterion) {
    let mut g = c.benchmark_group("striped_map_vs_single_mutex");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    const OPS: u32 = 20_000;
    const THREADS: usize = 4;

    for stripes in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("striped", stripes),
            &stripes,
            |b, &stripes| {
                b.iter(|| {
                    let map: Arc<StripedMap<u32, u32>> =
                        Arc::new(StripedMap::with_stripes(stripes));
                    std::thread::scope(|s| {
                        for t in 0..THREADS as u32 {
                            let map = Arc::clone(&map);
                            s.spawn(move || {
                                for i in 0..OPS {
                                    let k = i.wrapping_mul(2654435761).wrapping_add(t) % 4096;
                                    if i % 4 == 0 {
                                        map.insert(k, i);
                                    } else {
                                        std::hint::black_box(map.get(&k));
                                    }
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    g.bench_function("single_mutex_hashmap", |b| {
        b.iter(|| {
            let map: Arc<Mutex<HashMap<u32, u32>>> = Arc::new(Mutex::new(HashMap::new()));
            std::thread::scope(|s| {
                for t in 0..THREADS as u32 {
                    let map = Arc::clone(&map);
                    s.spawn(move || {
                        for i in 0..OPS {
                            let k = i.wrapping_mul(2654435761).wrapping_add(t) % 4096;
                            if i % 4 == 0 {
                                map.lock().insert(k, i);
                            } else {
                                std::hint::black_box(map.lock().get(&k).copied());
                            }
                        }
                    });
                }
            });
        });
    });
    g.finish();
}

/// Heap offer cost at the paper's k = 1000.
fn bench_heap_offers(c: &mut Criterion) {
    let mut g = c.benchmark_group("topk_heap_offers");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function("bounded_topk_k1000_100k_offers", |b| {
        b.iter(|| {
            let mut h = BoundedTopK::new(1000);
            let mut x = 1u64;
            for i in 0..100_000u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                h.offer(x % 1_000_000, i);
            }
            std::hint::black_box(h.threshold())
        });
    });
    g.finish();
}

/// Swap-cell snapshot cost under a concurrent swinger (the cleaner's
/// pointer swing pattern).
fn bench_swap_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("swap_cell");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function("load_under_swings", |b| {
        let cell = Arc::new(SwapCell::new(vec![0u64; 1024]));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let swinger = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    cell.store(vec![1u64; 1024]);
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        };
        b.iter(|| std::hint::black_box(cell.load().len()));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = swinger.join();
    });
    g.finish();
}

/// The multiplicative doc-id hasher against SipHash, standalone and
/// through a `HashMap` insert/lookup mix — the cost the shared
/// `docMap` pays on every posting.
fn bench_fast_hash_vs_siphash(c: &mut Criterion) {
    let mut g = c.benchmark_group("doc_id_hashing");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    const N: u32 = 100_000;

    g.bench_function("hash_only/siphash", |b| {
        let s = std::collections::hash_map::RandomState::new();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc ^= s.hash_one(i.wrapping_mul(2654435761));
            }
            std::hint::black_box(acc)
        });
    });
    g.bench_function("hash_only/fast", |b| {
        let s = FastBuildHasher;
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc ^= s.hash_one(i.wrapping_mul(2654435761));
            }
            std::hint::black_box(acc)
        });
    });
    g.bench_function("map_mixed/siphash", |b| {
        b.iter(|| {
            let mut map: HashMap<u32, u32> = HashMap::with_capacity(4096);
            for i in 0..N {
                let k = i.wrapping_mul(2654435761) % 4096;
                if i % 4 == 0 {
                    map.insert(k, i);
                } else {
                    std::hint::black_box(map.get(&k));
                }
            }
            std::hint::black_box(map.len())
        });
    });
    g.bench_function("map_mixed/fast", |b| {
        b.iter(|| {
            let mut map: HashMap<u32, u32, FastBuildHasher> =
                HashMap::with_capacity_and_hasher(4096, FastBuildHasher);
            for i in 0..N {
                let k = i.wrapping_mul(2654435761) % 4096;
                if i % 4 == 0 {
                    map.insert(k, i);
                } else {
                    std::hint::black_box(map.get(&k));
                }
            }
            std::hint::black_box(map.len())
        });
    });
    g.finish();
}

/// Slab admission against per-document `Arc<DocType>` allocation: the
/// cost of bringing one candidate into the docMap and posting its
/// first score, at the paper's m = 4 terms.
fn bench_slab_vs_arc_admission(c: &mut Criterion) {
    let mut g = c.benchmark_group("doc_record_admission");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    const DOCS: u32 = 50_000;
    const M: usize = 4;

    g.bench_function("arc_doc_type", |b| {
        b.iter(|| {
            let mut records = Vec::with_capacity(DOCS as usize);
            for id in 0..DOCS {
                let d = Arc::new(DocType::new(id, M));
                d.set_score(0, id % 97 + 1);
                records.push(d);
            }
            let sum: u64 = records.iter().map(|d| d.current_sum()).sum();
            std::hint::black_box(sum)
        });
    });
    g.bench_function("doc_slab", |b| {
        b.iter(|| {
            let slab = DocSlab::new(M);
            let mut handles = Vec::with_capacity(DOCS as usize);
            for id in 0..DOCS {
                let h = slab.alloc(id);
                slab.set_score(h, 0, id % 97 + 1);
                handles.push(h);
            }
            let sum: u64 = handles.iter().map(|&h| slab.current_sum(h)).sum();
            std::hint::black_box(sum)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_striped_vs_mutex,
    bench_heap_offers,
    bench_swap_cell,
    bench_fast_hash_vs_siphash,
    bench_slab_vs_arc_admission
);
criterion_main!(benches);
