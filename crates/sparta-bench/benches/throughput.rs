//! Criterion bench for Table 4 / Figure 4: throughput on the shared
//! FCFS worker pool, voice-query mix and fixed-length batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sparta_bench::{Dataset, Scale, VariantParams};
use sparta_core::algorithm_by_name;
use sparta_exec::WorkerPool;
use std::sync::Arc;
use std::time::Duration;

fn ensure_scale() {
    if std::env::var_os("SPARTA_DOCS").is_none() {
        let docs = std::env::var("SPARTA_BENCH_DOCS").unwrap_or_else(|_| "5000".into());
        std::env::set_var("SPARTA_DOCS", docs);
    }
}

/// Table 4: voice-query mix through a shared pool.
fn bench_voice_mix(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let cfg = VariantParams::high().config(ds.k);
    let mix = ds.queries.voice_mix(16, 99);
    let pool = Arc::new(WorkerPool::new(4));
    let mut g = c.benchmark_group("table4_throughput_voice_mix");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(mix.len() as u64));
    for name in ["sparta", "pra", "pbmw", "pjass"] {
        let algo = algorithm_by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                for q in &mix {
                    algo.search(&ds.index, q, &cfg, pool.as_ref());
                }
            });
        });
    }
    g.finish();
}

/// Figure 4: fixed-length batches.
fn bench_by_length(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let cfg = VariantParams::high().config(ds.k);
    let pool = Arc::new(WorkerPool::new(4));
    let mut g = c.benchmark_group("fig4_throughput_by_terms");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for name in ["sparta", "pbmw"] {
        let algo = algorithm_by_name(name).unwrap();
        for m in [2usize, 6, 12] {
            let batch = ds.queries_of_length(m, 8).to_vec();
            g.throughput(Throughput::Elements(batch.len() as u64));
            g.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                b.iter(|| {
                    for q in &batch {
                        algo.search(&ds.index, q, &cfg, pool.as_ref());
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_voice_mix, bench_by_length);
criterion_main!(benches);
