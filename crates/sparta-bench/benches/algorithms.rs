//! Criterion benches for Tables 2–3 / Figures 3a–3e: per-algorithm
//! query latency, exact and high-recall variants, by query length.
//!
//! Scale via `SPARTA_BENCH_DOCS` (default 5 000 so `cargo bench`
//! terminates quickly; raise it for meaningful absolute numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparta_bench::{Dataset, Scale, VariantParams};
use sparta_core::algorithm_by_name;
use sparta_exec::DedicatedExecutor;
use std::time::Duration;

fn ensure_scale() {
    if std::env::var_os("SPARTA_DOCS").is_none() {
        let docs = std::env::var("SPARTA_BENCH_DOCS").unwrap_or_else(|_| "5000".into());
        std::env::set_var("SPARTA_DOCS", docs);
    }
}

/// Table 2: exact variants, 12-term queries.
fn bench_exact(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let exec = DedicatedExecutor::new(4);
    let cfg = VariantParams::exact().config(ds.k);
    let queries = ds.queries_of_length(12, 8).to_vec();
    let mut g = c.benchmark_group("table2_exact_latency");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for name in ["sparta", "pnra", "snra", "pra", "pbmw", "pjass"] {
        let algo = algorithm_by_name(name).unwrap();
        g.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                algo.search(&ds.index, q, &cfg, &exec)
            });
        });
    }
    g.finish();
}

/// Figures 3a/3d: high-recall variants across query lengths.
fn bench_high_recall_by_length(c: &mut Criterion) {
    ensure_scale();
    let ds = Dataset::cached(Scale::Cw);
    let exec = DedicatedExecutor::new(4);
    let cfg = VariantParams::high().config(ds.k);
    let mut g = c.benchmark_group("fig3_latency_by_terms");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for name in ["sparta", "pbmw", "pjass"] {
        let algo = algorithm_by_name(name).unwrap();
        for m in [2usize, 6, 12] {
            let queries = ds.queries_of_length(m, 8).to_vec();
            g.bench_with_input(BenchmarkId::new(name, m), &m, |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let q = &queries[i % queries.len()];
                    i += 1;
                    algo.search(&ds.index, q, &cfg, &exec)
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_exact, bench_high_recall_by_length);
criterion_main!(benches);
