//! Compressed-backend micro-benches: block decode vs raw slice scan
//! (postings/sec) on both traversal orders, plus the random-access
//! probe cost — the decode-overhead numbers quoted in README/DESIGN
//! §14.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sparta_index::{CompressedIndex, InMemoryIndex, Index, Posting};
use std::time::Duration;

const N: u32 = 200_000;

/// A heavy-tailed single-term list shaped like a head term's postings
/// (~60% density, tf-idf-like scores with a high-score tail).
fn postings() -> Vec<Posting> {
    (0..N)
        .filter(|d| d.wrapping_mul(2654435761) % 5 != 0)
        .map(|d| {
            let x = d.wrapping_mul(2246822519).wrapping_add(97);
            let r = x % 1000;
            let score = if r >= 990 { 10_000 + x % 5_000 } else { 1 + r };
            Posting::new(d, score)
        })
        .collect()
}

fn bench_decode_vs_raw(c: &mut Criterion) {
    let list = postings();
    let len = list.len() as u64;
    let raw = InMemoryIndex::from_term_postings(vec![list.clone()], u64::from(N));
    let comp = CompressedIndex::from_term_postings(vec![list], u64::from(N));
    let (rf, cf) = (
        Index::footprint(&raw).unwrap().total(),
        Index::footprint(&comp).unwrap().total(),
    );
    println!(
        "index footprint: {rf} raw -> {cf} compressed ({:.2}x)",
        rf as f64 / cf as f64
    );

    let mut g = c.benchmark_group("compressed_backend");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(len));

    // Score-ordered stream: pJASS/Sparta's traversal order.
    g.bench_function("score_scan_raw", |b| {
        b.iter(|| {
            let mut c = raw.score_cursor(0);
            let mut sum = 0u64;
            while let Some(p) = c.next() {
                sum += u64::from(p.score);
            }
            std::hint::black_box(sum)
        });
    });
    g.bench_function("score_scan_compressed", |b| {
        b.iter(|| {
            let mut c = comp.score_cursor(0);
            let mut sum = 0u64;
            while let Some(p) = c.next() {
                sum += u64::from(p.score);
            }
            std::hint::black_box(sum)
        });
    });

    // Doc-ordered walk: the BMW/WAND family's traversal order.
    g.bench_function("doc_scan_raw", |b| {
        b.iter(|| {
            let mut c = raw.doc_cursor(0);
            let mut sum = 0u64;
            while c.doc().is_some() {
                sum += u64::from(c.score());
                c.advance();
            }
            std::hint::black_box(sum)
        });
    });
    g.bench_function("doc_scan_compressed", |b| {
        b.iter(|| {
            let mut c = comp.doc_cursor(0);
            let mut sum = 0u64;
            while c.doc().is_some() {
                sum += u64::from(c.score());
                c.advance();
            }
            std::hint::black_box(sum)
        });
    });

    // Random probes: pRA's access pattern (binary search + one block
    // decode per probe on the compressed side).
    const LOOKUPS: u64 = 512;
    g.throughput(Throughput::Elements(LOOKUPS));
    let (ra, rc) = (raw.random_access().unwrap(), comp.random_access().unwrap());
    g.bench_function("random_access_raw", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..LOOKUPS {
                sum += u64::from(ra.term_score(0, ((i * 2654435761) % u64::from(N)) as u32));
            }
            std::hint::black_box(sum)
        });
    });
    g.bench_function("random_access_compressed", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..LOOKUPS {
                sum += u64::from(rc.term_score(0, ((i * 2654435761) % u64::from(N)) as u32));
            }
            std::hint::black_box(sum)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_decode_vs_raw);
criterion_main!(benches);
