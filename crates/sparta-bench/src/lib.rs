//! Benchmark harness reproducing the evaluation of §5.
//!
//! The paper's experiments run on ClueWeb09B (50M docs) and a 10×
//! synthetic scale-up, on a 12-core Xeon. This reproduction builds the
//! same *generative* corpora at a configurable scale (`SPARTA_DOCS`,
//! default 20 000 documents, ClueWebX10 = 10× that) and measures the
//! same quantities: mean/p95 latency by query length, recall of the
//! approximate variants, recall dynamics over time, latency vs.
//! intra-query parallelism, and throughput on the voice-query mix.
//!
//! Absolute numbers differ from the paper's (different hardware, Rust
//! vs Java, corpus scale); the *shapes* — who wins, by what factor,
//! where crossovers fall — are the reproduction target, and the
//! scheduling-independent work metrics (postings scanned, map sizes,
//! random accesses) are reported alongside wall-clock times. See
//! EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub mod arrival;
pub mod dataset;
pub mod export;
pub mod load;
pub mod measure;
pub mod variants;

pub use arrival::ArrivalProcess;
pub use dataset::{Dataset, Scale};
pub use export::{
    out_path, validate_bench_json, BenchCell, BenchReport, IndexReport, RecallCurve, RecorderReport,
};
pub use load::{
    analyze_saturation, run_load_sim, run_load_tcp, LoadConfig, LoadLevel, LoadReport,
    SaturationReport, ServerScrape, StageStat, DEFAULT_LATENCY_BUDGET_MS,
};
pub use measure::{percentile, LatencyStats};
pub use variants::VariantParams;
