//! Machine-readable benchmark export: `BENCH_<name>.json`.
//!
//! The text tables `repro` prints are for humans; regression tracking
//! needs the same numbers in a stable, parseable shape. A
//! [`BenchReport`] captures one emission: per algorithm/variant/
//! thread-count cell the latency distribution, mean recall, summed
//! [`WorkStats`], and the executor's [`ExecSnapshot`], plus
//! recall-over-time curves from traced runs. [`validate_bench_json`]
//! re-parses an emitted document and checks the schema, so CI can
//! assert the emitter and the consumer agree.

use crate::dataset::Dataset;
use crate::load::LoadReport;
use crate::measure::{run_latency_with, LatencyStats};
use crate::variants::VariantParams;
use sparta_core::recall::recall_dynamics;
use sparta_core::result::WorkStats;
use sparta_core::{algorithm_by_name, Algorithm};
use sparta_exec::DedicatedExecutor;
use sparta_obs::json::{parse, Json};
use sparta_obs::{ClockMode, ExecSnapshot, FlightRecorder, HistogramSnapshot};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Schema version stamped into every document; bump on breaking shape
/// changes so consumers can dispatch.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured cell: an algorithm × variant × thread-count point.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Algorithm name (as registered with `algorithm_by_name`).
    pub algorithm: String,
    /// Variant label ("exact", "high", "low").
    pub variant: String,
    /// Posting backend the cell ran on ("raw" / "compressed").
    pub backend: String,
    /// Intra-query worker threads.
    pub threads: usize,
    /// Queries measured.
    pub queries: usize,
    /// The measured statistics.
    pub stats: LatencyStats,
}

/// One recall-dynamics curve from a traced run.
#[derive(Debug, Clone)]
pub struct RecallCurve {
    /// Algorithm name.
    pub algorithm: String,
    /// Variant label.
    pub variant: String,
    /// `(elapsed_ms, recall)` samples, monotone in both coordinates.
    pub points: Vec<(f64, f64)>,
}

/// Index-size accounting for the corpus the cells were measured on
/// (emitted as `"index"`). On a compressed dataset this is the
/// measured size-ratio evidence: `footprint_bytes` is the backend the
/// cells ran on, `raw_footprint_bytes` the uncompressed build of the
/// identical corpus.
#[derive(Debug, Clone)]
pub struct IndexReport {
    /// Backend name ("raw" / "compressed").
    pub backend: String,
    /// Total bytes of the measured index (postings + metadata).
    pub footprint_bytes: u64,
    /// Total bytes of the raw build of the same corpus.
    pub raw_footprint_bytes: u64,
}

impl IndexReport {
    /// raw / measured size ratio (1.0 for the raw backend).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_footprint_bytes as f64 / (self.footprint_bytes as f64).max(1.0)
    }
}

/// Flight-recorder accounting for a recorder-enabled emission.
#[derive(Debug, Clone, Copy)]
pub struct RecorderReport {
    /// Events recorded across all rings over the whole run.
    pub events_recorded: u64,
    /// Events overwritten off ring tails (capacity pressure).
    pub events_dropped: u64,
}

/// A full benchmark emission.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report name; the file is written as `BENCH_<name>.json`.
    pub name: String,
    /// Corpus size the cells were measured on.
    pub docs: u64,
    /// Result-set size k.
    pub k: usize,
    /// Queries measured per cell.
    pub queries_per_cell: usize,
    /// Terms per query in every cell.
    pub terms_per_query: usize,
    /// The measured cells.
    pub cells: Vec<BenchCell>,
    /// Index-size accounting (emitted as `"index"` when present).
    pub index: Option<IndexReport>,
    /// Recall-over-time curves.
    pub recall_curves: Vec<RecallCurve>,
    /// Present when the run had a flight recorder attached
    /// (`SPARTA_RECORDER=1`); emitted as `"flight_recorder"`.
    pub recorder: Option<RecorderReport>,
    /// Present on `repro load` emissions: the latency-under-load sweep
    /// (emitted as `"load"`). A load-only report may have no cells.
    pub load: Option<LoadReport>,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn work_json(w: &WorkStats) -> Json {
    Json::obj()
        .with("postings_scanned", w.postings_scanned)
        .with("random_accesses", w.random_accesses)
        .with("heap_updates", w.heap_updates)
        .with("docmap_peak", w.docmap_peak)
        .with("cleaner_passes", w.cleaner_passes)
        .with("jobs_panicked", w.jobs_panicked)
        .with("jobs_recycled", w.jobs_recycled)
        .with("docmap_final", w.docmap_final)
        .with("timeout_stops", w.timeout_stops)
        .with("blocks_skipped", w.blocks_skipped)
        .with("blocks_decoded", w.blocks_decoded)
        .with("compressed_bytes", w.compressed_bytes)
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::obj()
        .with("count", h.count)
        .with("sum", h.sum)
        .with("mean", h.mean())
        .with("p50", h.percentile(0.5))
        .with("p99", h.percentile(0.99))
}

fn exec_json(e: &ExecSnapshot) -> Json {
    Json::obj()
        .with("workers", e.workers)
        .with("jobs_run", e.jobs_run)
        .with("jobs_panicked", e.jobs_panicked)
        .with("busy_ns", e.busy_ns)
        .with("idle_ns", e.idle_ns)
        .with("idle_ratio", e.idle_ratio())
        .with("queue_depth_highwater", e.queue_depth_highwater)
        .with("queries_run", e.queries_run)
        .with("job_ns", histogram_json(&e.job_ns))
}

fn cell_json(c: &BenchCell) -> Json {
    Json::obj()
        .with("algorithm", c.algorithm.as_str())
        .with("variant", c.variant.as_str())
        .with("backend", c.backend.as_str())
        .with("threads", c.threads)
        .with("queries", c.queries)
        .with(
            "latency_ms",
            Json::obj()
                .with("mean", ms(c.stats.mean()))
                .with("p50", ms(c.stats.percentile(0.5)))
                .with("p95", ms(c.stats.percentile(0.95)))
                .with("p99", ms(c.stats.percentile(0.99)))
                .with("p999", ms(c.stats.percentile(0.999))),
        )
        .with("mean_recall", c.stats.mean_recall)
        .with("work", work_json(&c.stats.work))
        .with("exec", exec_json(&c.stats.exec))
}

fn curve_json(c: &RecallCurve) -> Json {
    Json::obj()
        .with("algorithm", c.algorithm.as_str())
        .with("variant", c.variant.as_str())
        .with(
            "points",
            Json::Arr(
                c.points
                    .iter()
                    .map(|&(t, r)| Json::obj().with("ms", t).with("recall", r))
                    .collect(),
            ),
        )
}

impl BenchReport {
    /// Serializes the report.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("schema_version", SCHEMA_VERSION)
            .with("name", self.name.as_str())
            .with("docs", self.docs)
            .with("k", self.k)
            .with("queries_per_cell", self.queries_per_cell)
            .with("terms_per_query", self.terms_per_query)
            .with(
                "cells",
                Json::Arr(self.cells.iter().map(cell_json).collect()),
            )
            .with(
                "recall_curves",
                Json::Arr(self.recall_curves.iter().map(curve_json).collect()),
            );
        if let Some(ix) = &self.index {
            j = j.with(
                "index",
                Json::obj()
                    .with("backend", ix.backend.as_str())
                    .with("footprint_bytes", ix.footprint_bytes)
                    .with("raw_footprint_bytes", ix.raw_footprint_bytes)
                    .with("compression_ratio", ix.compression_ratio()),
            );
        }
        if let Some(r) = &self.recorder {
            j = j.with(
                "flight_recorder",
                Json::obj()
                    .with("events_recorded", r.events_recorded)
                    .with("events_dropped", r.events_dropped),
            );
        }
        if let Some(l) = &self.load {
            j = j.with("load", l.to_json());
        }
        j
    }

    /// Writes `BENCH_<name>.json` under `dir` (created if needed) and
    /// returns the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = out_path(dir, &format!("BENCH_{}", self.name), "json")?;
        std::fs::write(&path, self.to_json().to_pretty_string(2))?;
        Ok(path)
    }
}

/// Resolves `dir/<name>.<ext>`, creating `dir` if needed — the single
/// naming convention shared by `--emit-json` (`BENCH_<name>.json`) and
/// `--emit-trace` (`TRACE_<name>.json`).
pub fn out_path(dir: &Path, name: &str, ext: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    Ok(dir.join(format!("{name}.{ext}")))
}

/// Measures every algorithm × variant × thread-count cell on
/// `queries_per_cell` queries of `terms_per_query` terms, recall
/// verified against the oracle, and attaches recall-dynamics curves
/// from traced single-query runs of each algorithm.
pub fn build_report(
    ds: &Dataset,
    name: &str,
    algorithms: &[&str],
    variants: &[VariantParams],
    thread_counts: &[usize],
    queries_per_cell: usize,
    terms_per_query: usize,
) -> BenchReport {
    // SPARTA_RECORDER=1 attaches a flight recorder to every measured
    // run; the report then carries its event accounting, so CI can
    // assert recorder-on runs do identical work.
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1).max(1);
    let recorder = std::env::var("SPARTA_RECORDER")
        .map(|v| v == "1")
        .unwrap_or(false)
        .then(|| FlightRecorder::new(max_threads, 1 << 12, ClockMode::Wall));
    let queries = ds.queries_of_length(terms_per_query, queries_per_cell);
    let mut cells = Vec::new();
    for &name in algorithms {
        let algo: Arc<dyn Algorithm> =
            algorithm_by_name(name).unwrap_or_else(|| panic!("unknown algorithm {name}"));
        for params in variants {
            for &t in thread_counts {
                let stats = run_latency_with(
                    ds,
                    algo.as_ref(),
                    queries,
                    params,
                    t,
                    true,
                    recorder.as_ref(),
                );
                cells.push(BenchCell {
                    algorithm: name.to_string(),
                    variant: params.label.to_string(),
                    backend: ds.backend.name().to_string(),
                    threads: t,
                    queries: queries.len(),
                    stats,
                });
            }
        }
    }
    let threads = thread_counts.iter().copied().max().unwrap_or(1);
    let recall_curves = build_recall_curves(ds, algorithms, threads, terms_per_query);
    let index = ds.index.footprint().map(|fp| IndexReport {
        backend: ds.backend.name().to_string(),
        footprint_bytes: fp.total(),
        raw_footprint_bytes: ds.raw_footprint.total(),
    });
    BenchReport {
        name: name.to_string(),
        docs: ds.index.num_docs(),
        k: ds.k,
        queries_per_cell: queries.len(),
        terms_per_query,
        cells,
        index,
        recall_curves,
        recorder: recorder.map(|r| RecorderReport {
            events_recorded: r.total_events(),
            events_dropped: r.dropped_events(),
        }),
        load: None,
    }
}

/// One traced exact run per algorithm, sampled into a recall curve
/// (§5.3's recall dynamics, machine-readable).
fn build_recall_curves(
    ds: &Dataset,
    algorithms: &[&str],
    threads: usize,
    terms_per_query: usize,
) -> Vec<RecallCurve> {
    let pool = ds.queries_of_length(terms_per_query, 1);
    let Some(q) = pool.first() else {
        return Vec::new();
    };
    let oracle = ds.oracle(q);
    let exec = DedicatedExecutor::new(threads.max(1));
    let params = VariantParams::exact().with_trace();
    let samples = 12;
    algorithms
        .iter()
        .map(|&name| {
            let algo =
                algorithm_by_name(name).unwrap_or_else(|| panic!("unknown algorithm {name}"));
            let r = algo.search(&ds.index, q, &params.config(ds.k), &exec);
            let trace = r.trace.clone().unwrap_or_default();
            let horizon = r.elapsed.max(Duration::from_micros(200));
            let points = recall_dynamics(&trace, &oracle, horizon, samples)
                .into_iter()
                .map(|(t, rec)| (ms(t), rec))
                .collect();
            RecallCurve {
                algorithm: name.to_string(),
                variant: params.label.to_string(),
                points,
            }
        })
        .collect()
}

fn require<'a>(j: &'a Json, key: &str, ctx: &str) -> Result<&'a Json, String> {
    j.get(key)
        .ok_or_else(|| format!("{ctx}: missing key {key:?}"))
}

fn require_num(j: &Json, key: &str, ctx: &str) -> Result<f64, String> {
    require(j, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: key {key:?} is not a number"))
}

/// Validates an emitted `BENCH_*.json` document: parses it and checks
/// every key the schema promises, so a CI smoke run fails loudly when
/// the emitter and this contract drift apart.
pub fn validate_bench_json(text: &str) -> Result<(), String> {
    let doc = parse(text)?;
    for key in ["name", "docs", "k", "queries_per_cell", "terms_per_query"] {
        require(&doc, key, "report")?;
    }
    let version = require_num(&doc, "schema_version", "report")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    let cells = require(&doc, "cells", "report")?
        .as_arr()
        .ok_or("report: cells is not an array")?;
    // A load-only emission (`repro load`) carries its measurements in
    // the "load" block and legitimately has no cells; anything else
    // with no cells measured nothing and is a bug.
    if cells.is_empty() && doc.get("load").is_none() {
        return Err("report: cells is empty".into());
    }
    for (i, cell) in cells.iter().enumerate() {
        let ctx = format!("cell {i}");
        for key in ["algorithm", "variant"] {
            require(cell, key, &ctx)?
                .as_str()
                .ok_or_else(|| format!("{ctx}: key {key:?} is not a string"))?;
        }
        for key in ["threads", "queries", "mean_recall"] {
            require_num(cell, key, &ctx)?;
        }
        let lat = require(cell, "latency_ms", &ctx)?;
        for key in ["mean", "p50", "p95", "p99", "p999"] {
            require_num(lat, key, &format!("{ctx} latency_ms"))?;
        }
        // Optional: older emissions predate per-cell backend labels.
        if let Some(b) = cell.get("backend") {
            b.as_str()
                .ok_or_else(|| format!("{ctx}: key \"backend\" is not a string"))?;
        }
        let work = require(cell, "work", &ctx)?;
        for key in [
            "postings_scanned",
            "random_accesses",
            "heap_updates",
            "docmap_peak",
            "cleaner_passes",
            "jobs_panicked",
            "jobs_recycled",
            "docmap_final",
            "timeout_stops",
        ] {
            require_num(work, key, &format!("{ctx} work"))?;
        }
        // Optional (schema-compatible additions): compressed-backend
        // counters. Absent in pre-compression emissions; when present
        // they must be numbers.
        for key in ["blocks_skipped", "blocks_decoded", "compressed_bytes"] {
            if work.get(key).is_some() {
                require_num(work, key, &format!("{ctx} work"))?;
            }
        }
        let exec = require(cell, "exec", &ctx)?;
        for key in [
            "workers",
            "jobs_run",
            "jobs_panicked",
            "busy_ns",
            "idle_ns",
            "idle_ratio",
            "queue_depth_highwater",
            "queries_run",
        ] {
            require_num(exec, key, &format!("{ctx} exec"))?;
        }
        let job_ns = require(exec, "job_ns", &format!("{ctx} exec"))?;
        for key in ["count", "sum", "mean", "p50", "p99"] {
            require_num(job_ns, key, &format!("{ctx} exec job_ns"))?;
        }
    }
    let curves = require(&doc, "recall_curves", "report")?
        .as_arr()
        .ok_or("report: recall_curves is not an array")?;
    for (i, curve) in curves.iter().enumerate() {
        let ctx = format!("recall_curve {i}");
        require(curve, "algorithm", &ctx)?;
        require(curve, "variant", &ctx)?;
        let points = require(curve, "points", &ctx)?
            .as_arr()
            .ok_or_else(|| format!("{ctx}: points is not an array"))?;
        for p in points {
            require_num(p, "ms", &ctx)?;
            require_num(p, "recall", &ctx)?;
        }
    }
    // Optional: index-size accounting, but when present it must be
    // well-formed (this is where compressed-vs-raw ratios are
    // regression-tracked).
    if let Some(ix) = doc.get("index") {
        require(ix, "backend", "index")?
            .as_str()
            .ok_or("index: backend is not a string")?;
        for key in [
            "footprint_bytes",
            "raw_footprint_bytes",
            "compression_ratio",
        ] {
            require_num(ix, key, "index")?;
        }
    }
    // Optional: present only on recorder-enabled runs, but when present
    // it must be well-formed.
    if let Some(fr) = doc.get("flight_recorder") {
        for key in ["events_recorded", "events_dropped"] {
            require_num(fr, key, "flight_recorder")?;
        }
    }
    // Optional: present only on `repro load` emissions, but when
    // present the latency-under-load sweep must be complete — at
    // least one level, each with admission counters, the latency
    // percentiles, and a queue-depth series.
    if let Some(load) = doc.get("load") {
        for key in ["arrival", "mode"] {
            require(load, key, "load")?
                .as_str()
                .ok_or_else(|| format!("load: key {key:?} is not a string"))?;
        }
        for key in ["seed", "service_ns", "max_in_flight", "queue_capacity"] {
            require_num(load, key, "load")?;
        }
        let levels = require(load, "levels", "load")?
            .as_arr()
            .ok_or("load: levels is not an array")?;
        if levels.is_empty() {
            return Err("load: levels is empty".into());
        }
        for (i, level) in levels.iter().enumerate() {
            let ctx = format!("load level {i}");
            for key in [
                "offered_qps",
                "offered",
                "accepted",
                "queued",
                "shed",
                "abandoned",
                "completed",
                "queue_depth_highwater",
                "in_flight_highwater",
            ] {
                require_num(level, key, &ctx)?;
            }
            let lat = require(level, "latency_ms", &ctx)?;
            for key in ["count", "mean", "p50", "p99", "p999"] {
                require_num(lat, key, &format!("{ctx} latency_ms"))?;
            }
            let depth = require(level, "queue_depth", &ctx)?
                .as_arr()
                .ok_or_else(|| format!("{ctx}: queue_depth is not an array"))?;
            for p in depth {
                require_num(p, "ns", &ctx)?;
                require_num(p, "depth", &ctx)?;
            }
        }
        // Optional: present only when the TCP sweep scraped an admin
        // endpoint; when present, the server-side truth must be
        // complete — scrape accounting, the admission counters, and a
        // per-stage totals array.
        if let Some(server) = load.get("server") {
            require_num(server, "scrapes", "load server")?;
            match require(server, "monotone", "load server")? {
                Json::Bool(_) => {}
                _ => return Err("load server: monotone is not a bool".into()),
            }
            for key in [
                "attempts",
                "accepted",
                "queued",
                "shed",
                "abandoned",
                "completed",
                "queue_depth_highwater",
                "in_flight_highwater",
            ] {
                require_num(server, key, "load server")?;
            }
            let stages = require(server, "stages", "load server")?
                .as_arr()
                .ok_or("load server: stages is not an array")?;
            for (i, stage) in stages.iter().enumerate() {
                let ctx = format!("load server stage {i}");
                require(stage, "stage", &ctx)?
                    .as_str()
                    .ok_or_else(|| format!("{ctx}: stage is not a string"))?;
                require_num(stage, "count", &ctx)?;
                require_num(stage, "sum_ns", &ctx)?;
            }
        }
        // Required: every non-empty sweep carries its saturation
        // analysis — the knee verdict, where it sits, and the dominant
        // wait class there.
        let sat = require(load, "saturation", "load")?;
        for key in [
            "latency_budget_ms",
            "knee_qps",
            "knee_p99_ms",
            "in_flight_utilization",
        ] {
            require_num(sat, key, "load saturation")?;
        }
        match require(sat, "knee_detected", "load saturation")? {
            Json::Bool(_) => {}
            _ => return Err("load saturation: knee_detected is not a bool".into()),
        }
        let wait = require(sat, "dominant_wait", "load saturation")?
            .as_str()
            .ok_or("load saturation: dominant_wait is not a string")?;
        if wait.is_empty() {
            return Err("load saturation: dominant_wait is empty".into());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        BenchReport {
            name: "unit".into(),
            docs: 100,
            k: 5,
            queries_per_cell: 1,
            terms_per_query: 2,
            cells: vec![BenchCell {
                algorithm: "sparta".into(),
                variant: "exact".into(),
                backend: "raw".into(),
                threads: 2,
                queries: 1,
                stats: LatencyStats {
                    sorted: vec![Duration::from_millis(3)],
                    mean_recall: 1.0,
                    work: WorkStats::default(),
                    exec: ExecSnapshot::default(),
                },
            }],
            recall_curves: vec![RecallCurve {
                algorithm: "sparta".into(),
                variant: "exact".into(),
                points: vec![(0.5, 0.4), (1.0, 1.0)],
            }],
            index: None,
            recorder: None,
            load: None,
        }
    }

    #[test]
    fn index_block_roundtrips_and_validates() {
        let mut r = tiny_report();
        r.index = Some(IndexReport {
            backend: "compressed".into(),
            footprint_bytes: 250,
            raw_footprint_bytes: 1000,
        });
        let text = r.to_json().to_pretty_string(2);
        validate_bench_json(&text).unwrap();
        let doc = parse(&text).unwrap();
        let ix = doc.get("index").expect("block emitted");
        assert_eq!(ix.get("backend").and_then(Json::as_str), Some("compressed"));
        assert_eq!(
            ix.get("compression_ratio").and_then(Json::as_f64),
            Some(4.0)
        );
        // Cells carry the backend label and the new work counters.
        let cell = &doc.get("cells").and_then(|c| c.as_arr()).unwrap()[0];
        assert_eq!(cell.get("backend").and_then(Json::as_str), Some("raw"));
        let work = cell.get("work").unwrap();
        for key in ["blocks_skipped", "blocks_decoded", "compressed_bytes"] {
            assert!(work.get(key).is_some(), "missing {key}");
        }
        // A malformed block must fail even though the block is optional.
        let broken = text.replace("raw_footprint_bytes", "raw_footprint_mangled");
        assert!(validate_bench_json(&broken).is_err());
    }

    #[test]
    fn report_json_validates() {
        let r = tiny_report();
        validate_bench_json(&r.to_json().to_pretty_string(2)).unwrap();
        validate_bench_json(&r.to_json().to_string()).unwrap();
    }

    #[test]
    fn validation_catches_missing_keys() {
        let mut j = tiny_report().to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "cells");
        }
        let err = validate_bench_json(&j.to_string()).unwrap_err();
        assert!(err.contains("cells"), "unexpected error: {err}");
    }

    #[test]
    fn validation_catches_malformed_cell() {
        let mut j = tiny_report().to_json();
        if let Some(Json::Arr(cells)) = match &mut j {
            Json::Obj(pairs) => pairs.iter_mut().find(|(k, _)| k == "cells").map(|(_, v)| v),
            _ => None,
        } {
            if let Json::Obj(cell) = &mut cells[0] {
                cell.retain(|(k, _)| k != "exec");
            }
        }
        let err = validate_bench_json(&j.to_string()).unwrap_err();
        assert!(err.contains("exec"), "unexpected error: {err}");
    }

    #[test]
    fn recorder_block_roundtrips_and_validates() {
        let mut r = tiny_report();
        r.recorder = Some(RecorderReport {
            events_recorded: 123,
            events_dropped: 4,
        });
        let text = r.to_json().to_pretty_string(2);
        validate_bench_json(&text).unwrap();
        let doc = parse(&text).unwrap();
        let fr = doc.get("flight_recorder").expect("block emitted");
        assert_eq!(
            fr.get("events_recorded").and_then(Json::as_f64),
            Some(123.0)
        );
        // A malformed block must fail even though the block is optional.
        let broken = text.replace("events_dropped", "events_mangled");
        assert!(validate_bench_json(&broken).is_err());
    }

    #[test]
    fn load_server_block_roundtrips_and_validates() {
        use crate::load::{LoadLevel, LoadReport, SaturationReport, ServerScrape, StageStat};
        let mut r = tiny_report();
        r.load = Some(LoadReport {
            arrival: "poisson".into(),
            mode: "tcp".into(),
            seed: 7,
            service_ns: 0,
            max_in_flight: 4,
            queue_capacity: 16,
            levels: vec![LoadLevel {
                offered_qps: 100.0,
                offered: 10,
                snapshot: sparta_obs::ServerSnapshot::default(),
                latencies_ns: vec![1_000, 2_000],
                queue_depth: Vec::new(),
            }],
            server: Some(ServerScrape {
                scrapes: 2,
                monotone: true,
                snapshot: sparta_obs::ServerSnapshot::default(),
                stages: vec![StageStat {
                    stage: "execute".into(),
                    count: 10,
                    sum_ns: 12345,
                }],
            }),
            saturation: Some(SaturationReport {
                latency_budget_ms: 10.0,
                knee_detected: true,
                knee_qps: 100.0,
                knee_p99_ms: 12.5,
                dominant_wait: "queue_wait".into(),
                in_flight_utilization: 1.0,
            }),
        });
        let text = r.to_json().to_pretty_string(2);
        validate_bench_json(&text).unwrap();
        let doc = parse(&text).unwrap();
        let server = doc
            .get("load")
            .and_then(|l| l.get("server"))
            .expect("server block emitted");
        assert_eq!(server.get("scrapes").and_then(Json::as_f64), Some(2.0));
        assert!(matches!(server.get("monotone"), Some(Json::Bool(true))));
        // A malformed block must fail even though the block is optional.
        let broken = text.replace("\"monotone\": true", "\"monotone\": 1");
        assert!(validate_bench_json(&broken).is_err());
        let broken = text.replace("\"sum_ns\"", "\"sum_mangled\"");
        assert!(validate_bench_json(&broken).is_err());
        // The saturation block is required and typed: a missing block,
        // a mistyped knee verdict, and an empty wait class all fail.
        let broken = text.replace("\"saturation\"", "\"saturation_gone\"");
        assert!(validate_bench_json(&broken).is_err());
        let broken = text.replace("\"knee_detected\": true", "\"knee_detected\": 1");
        assert!(validate_bench_json(&broken).is_err());
        let broken = text.replace(
            "\"dominant_wait\": \"queue_wait\"",
            "\"dominant_wait\": \"\"",
        );
        assert!(validate_bench_json(&broken).is_err());
    }

    #[test]
    fn out_path_builds_convention_and_creates_dir() {
        let dir = std::env::temp_dir().join(format!("sparta-out-path-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let p = out_path(&dir, "TRACE_smoke", "json").unwrap();
        assert!(p.ends_with("TRACE_smoke.json"));
        assert!(dir.is_dir(), "out_path creates the directory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_to_names_file_after_report() {
        let dir = std::env::temp_dir().join(format!("sparta-bench-export-{}", std::process::id()));
        let path = tiny_report().write_to(&dir).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        validate_bench_json(&text).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
