//! Benchmark datasets: the synthetic ClueWeb-like corpus ("CW") and
//! its 10× scale-up ("CWX10"), with the AOL-like query pools.

use sparta_core::oracle::Oracle;
use sparta_corpus::querylog::QueryLog;
use sparta_corpus::scoring::TfIdfScorer;
use sparta_corpus::synth::{CorpusModel, SynthCorpus};
use sparta_corpus::types::Query;
use sparta_index::{CompressedIndex, Index, IndexBuilder, IndexFootprint, IndexKind};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Which corpus scale to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The base corpus (paper: ClueWeb09B, 50M docs).
    Cw,
    /// The 10× synthetic scale-up (paper: ClueWebX10, 500M docs).
    CwX10,
}

impl Scale {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Cw => "CW",
            Scale::CwX10 => "CWX10",
        }
    }
}

/// Base document count: `SPARTA_DOCS` env var, default 20 000.
pub fn base_docs() -> u64 {
    std::env::var("SPARTA_DOCS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000)
}

/// A built benchmark dataset: index + query pools + oracle cache.
pub struct Dataset {
    /// Scale tag.
    pub scale: Scale,
    /// The index (in-memory; the storage layer is exercised by its own
    /// tests/benches — RAM-resident gives all algorithms except pRA
    /// "similar results", §5).
    pub index: Arc<dyn Index>,
    /// 100-per-length query pools, lengths 1–12 (the AOL sample shape).
    pub queries: QueryLog,
    /// k used throughout (paper: 1000; scaled as docs/100, min 10).
    pub k: usize,
    /// Posting representation `index` was built with.
    pub backend: IndexKind,
    /// Footprint of the *raw* build of the same corpus — kept even on
    /// compressed datasets so reports can state the compression ratio.
    pub raw_footprint: IndexFootprint,
    oracles: Mutex<HashMap<Query, Arc<Oracle>>>,
}

impl Dataset {
    /// Builds a raw-backend dataset at the given scale. Expensive; use
    /// [`Dataset::cached`].
    pub fn build(scale: Scale) -> Self {
        Self::build_kind(scale, IndexKind::Raw)
    }

    /// Builds a dataset on the selected posting backend. The raw index
    /// is always built first (it is also the compressed builder's
    /// input), so `raw_footprint` is measured on the identical corpus.
    pub fn build_kind(scale: Scale, kind: IndexKind) -> Self {
        let docs = match scale {
            Scale::Cw => base_docs(),
            Scale::CwX10 => base_docs() * 10,
        };
        let model = CorpusModel::clueweb_sim(base_docs(), 42);
        let model = match scale {
            Scale::Cw => model,
            // Same dictionary & rates, 10× docs (§5.1). `x10()`
            // perturbs the seed so the scale-up is a fresh draw.
            Scale::CwX10 => model.x10(),
        };
        debug_assert_eq!(model.num_docs, docs);
        let corpus = SynthCorpus::build(model);
        let mem = IndexBuilder::new(TfIdfScorer).build_memory(&corpus);
        let raw_footprint = Index::footprint(&mem).expect("raw index reports a footprint");
        let index: Arc<dyn Index> = match kind {
            IndexKind::Raw => Arc::new(mem),
            IndexKind::Compressed => Arc::new(CompressedIndex::from_index(&mem)),
        };
        // Queries always come from the *base* corpus statistics (the
        // paper samples AOL queries once and runs them on both
        // corpora; our X10 shares the dictionary so term ids carry
        // over).
        let base_stats = if scale == Scale::Cw {
            corpus.stats().clone()
        } else {
            SynthCorpus::build(CorpusModel::clueweb_sim(base_docs(), 42))
                .stats()
                .clone()
        };
        let queries = QueryLog::generate(&base_stats, 100, 12, 7);
        // k scales with the corpus (paper: 1000 at 50M docs); override
        // with SPARTA_K to reproduce the paper's k = 100 aside (§5.1).
        let k = std::env::var("SPARTA_K")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| (base_docs() / 100).clamp(10, 1000) as usize);
        Self {
            scale,
            index,
            queries,
            k,
            backend: kind,
            raw_footprint,
            oracles: Mutex::new(HashMap::new()),
        }
    }

    /// Process-wide cached datasets (building CWX10 can take a while).
    pub fn cached(scale: Scale) -> &'static Dataset {
        Self::cached_kind(scale, IndexKind::Raw)
    }

    /// [`Dataset::cached`] with a backend choice; one cache slot per
    /// (scale, backend) cell.
    pub fn cached_kind(scale: Scale, kind: IndexKind) -> &'static Dataset {
        static CW: OnceLock<Dataset> = OnceLock::new();
        static CWX10: OnceLock<Dataset> = OnceLock::new();
        static CW_COMP: OnceLock<Dataset> = OnceLock::new();
        static CWX10_COMP: OnceLock<Dataset> = OnceLock::new();
        let slot = match (scale, kind) {
            (Scale::Cw, IndexKind::Raw) => &CW,
            (Scale::CwX10, IndexKind::Raw) => &CWX10,
            (Scale::Cw, IndexKind::Compressed) => &CW_COMP,
            (Scale::CwX10, IndexKind::Compressed) => &CWX10_COMP,
        };
        slot.get_or_init(|| Dataset::build_kind(scale, kind))
    }

    /// `n` queries of exactly `m` terms.
    pub fn queries_of_length(&self, m: usize, n: usize) -> &[Query] {
        let pool = self.queries.of_length(m);
        &pool[..n.min(pool.len())]
    }

    /// Ground truth for a query (cached; oracles are expensive).
    pub fn oracle(&self, q: &Query) -> Arc<Oracle> {
        let mut cache = self.oracles.lock().unwrap();
        if let Some(o) = cache.get(q) {
            return Arc::clone(o);
        }
        let o = Arc::new(Oracle::compute(self.index.as_ref(), q, self.k));
        cache.insert(q.clone(), Arc::clone(&o));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_builds() {
        std::env::set_var("SPARTA_DOCS", "2000");
        let d = Dataset::build(Scale::Cw);
        assert_eq!(d.index.num_docs(), 2000);
        assert_eq!(d.queries_of_length(12, 5).len(), 5);
        let q = &d.queries_of_length(3, 1)[0];
        let o1 = d.oracle(q);
        let o2 = d.oracle(q);
        assert!(Arc::ptr_eq(&o1, &o2), "oracle cached");
    }

    #[test]
    fn compressed_backend_builds_same_corpus_smaller() {
        std::env::set_var("SPARTA_DOCS", "2000");
        let d = Dataset::build_kind(Scale::Cw, IndexKind::Compressed);
        assert_eq!(d.backend, IndexKind::Compressed);
        assert_eq!(d.index.num_docs(), 2000);
        let fp = d
            .index
            .footprint()
            .expect("compressed index reports a footprint");
        assert!(
            fp.total() < d.raw_footprint.total(),
            "compressed {} >= raw {}",
            fp.total(),
            d.raw_footprint.total()
        );
    }
}
