//! `repro` — regenerates every table and figure of the paper's
//! evaluation (§5) at this reproduction's scale.
//!
//! ```sh
//! cargo run --release -p sparta-bench --bin repro -- <experiment>
//! ```
//!
//! Experiments: `table2 table3 table4 fig3a fig3b fig3c fig3d fig3e
//! fig3f fig3g fig3h fig3i fig4 ablations ramdisk all`
//!
//! Machine-readable export (see DESIGN.md "Observability"):
//!
//! ```sh
//! repro --emit-json <name>       # writes out/BENCH_<name>.json
//! repro --validate-json <path>   # schema-checks an emitted document
//! repro --perf-guard <baseline>  # deterministic work-counter guard;
//!                                #   --write regenerates the baseline
//! repro --perf-guard-compressed <baseline>
//!                                # same pinned cell replayed on the
//!                                #   compressed posting backend; also
//!                                #   asserts block-max pruning and
//!                                #   block decoding actually fired
//! repro --emit-trace <name>      # flight-recorder timeline of the
//!                                #   pinned guard cell as Chrome
//!                                #   trace JSON: out/TRACE_<name>.json
//! repro --validate-trace <path>  # schema-checks an emitted trace
//! repro --recorder-overhead [n]  # recorder on-vs-off p50 on the
//!                                #   guard cell, n repetitions
//! repro profile <name>           # deterministic aggregate profile of
//!                                #   the pinned guard cell (utilization,
//!                                #   contention, per-phase self time):
//!                                #   out/PROFILE_<name>.json; add
//!                                #   --collapsed for the flamegraph
//!                                #   text rendering on stdout
//! ```
//!
//! Environment:
//! * `SPARTA_DOCS`    — base corpus size (default 20 000; CWX10 = 10×)
//! * `SPARTA_QUERIES` — queries per cell   (default 20; paper uses 100)
//! * `SPARTA_THREADS` — worker threads     (default 4; paper uses 12)
//! * `SPARTA_RECORDER` — `1` attaches a flight recorder to
//!   `--emit-json` and `--perf-guard` runs (the guard asserts the
//!   counters stay identical either way)

#![forbid(unsafe_code)]

use sparta_bench::{Dataset, LatencyStats, Scale, VariantParams};
use sparta_core::recall::{recall_dynamics, time_to_recall};
use sparta_core::{algorithm_by_name, Algorithm};
use sparta_exec::{DedicatedExecutor, Executor as _};
use sparta_index::IndexKind;
use std::sync::Arc;
use std::time::Duration;

fn threads() -> usize {
    std::env::var("SPARTA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

fn queries_per_cell() -> usize {
    std::env::var("SPARTA_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
}

fn algo(name: &str) -> Arc<dyn Algorithm> {
    algorithm_by_name(name).unwrap_or_else(|| panic!("unknown algorithm {name}"))
}

fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn cell(
    ds: &Dataset,
    name: &str,
    m: usize,
    params: &VariantParams,
    t: usize,
    recall: bool,
) -> LatencyStats {
    let qs: Vec<_> = ds.queries_of_length(m, queries_per_cell()).to_vec();
    sparta_bench::measure::run_latency(ds, algo(name).as_ref(), &qs, params, t, recall)
}

/// Table 2: mean latency of 12-term queries, exact algorithms.
fn table2() {
    println!(
        "== Table 2: mean exact latency (ms), 12-term queries, {} threads ==",
        threads()
    );
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "corpus", "sparta", "pnra", "snra", "pra", "pbmw", "pjass"
    );
    for scale in [Scale::Cw, Scale::CwX10] {
        let ds = Dataset::cached(scale);
        print!("{:>6}", scale.name());
        for name in ["sparta", "pnra", "snra", "pra", "pbmw", "pjass"] {
            let s = cell(ds, name, 12, &VariantParams::exact(), threads(), false);
            print!(" {:>9}", fmt_ms(s.mean()));
        }
        println!();
    }
    println!(
        "(paper, 50M/500M docs: Sparta 860/12010, pNRA 13291/OOM, sNRA 5553/56223, \
         pRA 480/7410, pBMW 750/10210, pJASS 54343/OOM)"
    );
}

/// Table 3: recall of the approximate variants, 12-term queries.
fn table3() {
    println!("== Table 3: recall of approximate variants, 12-term queries ==");
    let high = VariantParams::high();
    let low = VariantParams::low();
    println!(
        "calibrated params: Δ={:?}, f(high/low)={}/{}, p(high/low)={}/{}",
        high.delta.unwrap(),
        high.bmw_f,
        low.bmw_f,
        high.jass_p,
        low.jass_p
    );
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "corpus",
        "sparta-high",
        "pra-high",
        "pnra-high",
        "snra-high",
        "pbmw-high",
        "pbmw-low",
        "pjass-high",
        "pjass-low"
    );
    for scale in [Scale::Cw, Scale::CwX10] {
        let ds = Dataset::cached(scale);
        print!("{:>6}", scale.name());
        let cells: [(&str, &VariantParams, usize); 8] = [
            ("sparta", &high, 12),
            ("pra", &high, 10),
            ("pnra", &high, 10),
            ("snra", &high, 10),
            ("pbmw", &high, 10),
            ("pbmw", &low, 10),
            ("pjass", &high, 11),
            ("pjass", &low, 10),
        ];
        for (name, params, width) in cells {
            let s = cell(ds, name, 12, params, threads(), true);
            print!(" {:>w$.1}%", 100.0 * s.mean_recall, w = width - 1);
        }
        println!();
    }
    println!("(paper CW: 97.5 / 98.5 / 98.5 / 99 / 97.5 / 80 / 96 / 93)");
}

/// Table 4: throughput (qps) on the voice-query mix, shared pool.
fn table4() {
    println!(
        "== Table 4: throughput (qps), voice-query mix, {}-thread shared pool ==",
        threads()
    );
    let n_mix = (queries_per_cell() * 5).max(40);
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9}",
        "corpus", "sparta", "pra", "pbmw", "pjass"
    );
    for scale in [Scale::Cw, Scale::CwX10] {
        let ds = Dataset::cached(scale);
        let mix = ds.queries.voice_mix(n_mix, 99);
        print!("{:>6}", scale.name());
        for name in ["sparta", "pra", "pbmw", "pjass"] {
            let qps = sparta_bench::measure::run_throughput(
                ds,
                algo(name).as_ref(),
                &mix,
                &VariantParams::high(),
                threads(),
            );
            print!(" {qps:>9.2}");
        }
        println!();
    }
    println!("(paper CW: 12.5 / 10.9 / 5.95 / 10.8; CWX10: 9.6 / 1.8 / 0.38 / N/A)");
}

/// Figures 3a/3b (CW) and 3c (CWX10): latency vs query length.
fn fig3_latency(scale: Scale, p95: bool, tag: &str) {
    let ds = Dataset::cached(scale);
    let stat = if p95 { "p95" } else { "mean" };
    println!(
        "== Fig {tag}: {stat} latency (ms) vs #terms, {}, high-recall, m threads ==",
        scale.name()
    );
    let names = ["sparta", "pra", "pnra", "snra", "pbmw", "pjass"];
    print!("{:>6}", "terms");
    for n in names {
        print!(" {n:>9}");
    }
    println!();
    for m in [1usize, 2, 4, 6, 8, 10, 12] {
        print!("{m:>6}");
        for name in names {
            let s = cell(ds, name, m, &VariantParams::high(), m.min(threads()), false);
            let v = if p95 { s.percentile(0.95) } else { s.mean() };
            print!(" {:>9}", fmt_ms(v));
        }
        println!();
    }
}

/// Figures 3d/3e: Sparta-high vs low-recall pBMW/pJASS.
fn fig3_low(scale: Scale, p95: bool, tag: &str) {
    let ds = Dataset::cached(scale);
    let stat = if p95 { "p95" } else { "mean" };
    println!(
        "== Fig {tag}: {stat} latency (ms) vs #terms, {}: sparta-high vs low-recall ==",
        scale.name()
    );
    println!(
        "{:>6} {:>12} {:>9} {:>9}",
        "terms", "sparta-high", "pbmw-low", "pjass-low"
    );
    for m in [1usize, 2, 4, 6, 8, 10, 12] {
        let sh = cell(
            ds,
            "sparta",
            m,
            &VariantParams::high(),
            m.min(threads()),
            false,
        );
        let bl = cell(
            ds,
            "pbmw",
            m,
            &VariantParams::low(),
            m.min(threads()),
            false,
        );
        let jl = cell(
            ds,
            "pjass",
            m,
            &VariantParams::low(),
            m.min(threads()),
            false,
        );
        let v = |s: &LatencyStats| if p95 { s.percentile(0.95) } else { s.mean() };
        println!(
            "{m:>6} {:>12} {:>9} {:>9}",
            fmt_ms(v(&sh)),
            fmt_ms(v(&bl)),
            fmt_ms(v(&jl))
        );
    }
}

/// Figures 3f/3g: recall dynamics over elapsed time, 12-term queries.
fn fig3_dynamics(scale: Scale, tag: &str) {
    let ds = Dataset::cached(scale);
    println!(
        "== Fig {tag}: recall vs elapsed time, 12-term query, {} ==",
        scale.name()
    );
    let q = &ds.queries_of_length(12, 1)[0];
    let oracle = ds.oracle(q);
    let exec = DedicatedExecutor::new(threads());
    let samples = 16;
    // Exact versions for Sparta/pRA/pJASS ("identical to the
    // respective exact versions until they stop", §5.3); pBMW in all
    // three variants.
    let runs: Vec<(&str, &str, VariantParams)> = vec![
        ("sparta", "exact", VariantParams::exact().with_trace()),
        ("pra", "exact", VariantParams::exact().with_trace()),
        ("pjass", "exact", VariantParams::exact().with_trace()),
        ("pbmw", "exact", VariantParams::exact().with_trace()),
        ("pbmw", "high", VariantParams::high().with_trace()),
        ("pbmw", "low", VariantParams::low().with_trace()),
    ];
    for (name, label, params) in runs {
        let r = algo(name).search(&ds.index, q, &params.config(ds.k), &exec);
        let trace = r.trace.clone().unwrap_or_default();
        let horizon = r.elapsed.max(Duration::from_micros(200));
        let curve = recall_dynamics(&trace, &oracle, horizon, samples);
        print!("{name:>7}-{label:<5} |");
        for (_, rec) in &curve {
            print!(
                "{}",
                match (rec * 10.0) as u32 {
                    0 => ' ',
                    1..=2 => '.',
                    3..=5 => 'o',
                    6..=8 => 'O',
                    _ => '#',
                }
            );
        }
        let t80 = time_to_recall(&curve, 0.8)
            .map(|t| format!("80% @ {}ms", fmt_ms(t)))
            .unwrap_or_else(|| "80% not reached".into());
        println!(
            "| total {}ms, {t80}, final {:.1}%",
            fmt_ms(r.elapsed),
            100.0 * oracle.recall(&r.docs())
        );
    }
    println!("( ' '<10% '.'<30% 'o'<60% 'O'<90% '#'>=90%, {samples} samples over each run )");
}

/// Figures 3h/3i: latency vs intra-query parallelism, 12-term queries.
fn fig3_parallelism(scale: Scale, tag: &str) {
    let ds = Dataset::cached(scale);
    println!(
        "== Fig {tag}: mean latency (ms) vs #threads, 12-term queries, {} ==",
        scale.name()
    );
    println!(
        "  [note: this host has {} hardware core(s) — thread-count scaling measures",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    println!("   scheduling overhead here, not hardware parallelism; see EXPERIMENTS.md]");
    let names = ["sparta", "pra", "pbmw", "pjass"];
    print!("{:>8}", "threads");
    for n in names {
        print!(" {n:>9}");
    }
    println!();
    for t in [1usize, 2, 4, 8, 12] {
        print!("{t:>8}");
        for name in names {
            let s = cell(ds, name, 12, &VariantParams::high(), t, false);
            print!(" {:>9}", fmt_ms(s.mean()));
        }
        println!();
    }
}

/// Figure 4: throughput vs query length (CW).
fn fig4() {
    let ds = Dataset::cached(Scale::Cw);
    println!(
        "== Fig 4: throughput (qps) vs #terms, CW, {}-thread pool ==",
        threads()
    );
    let names = ["sparta", "pra", "pbmw", "pjass"];
    print!("{:>6}", "terms");
    for n in names {
        print!(" {n:>9}");
    }
    println!();
    for m in [1usize, 2, 4, 6, 8, 10, 12] {
        let qs: Vec<_> = ds.queries_of_length(m, queries_per_cell()).to_vec();
        print!("{m:>6}");
        for name in names {
            let qps = sparta_bench::measure::run_throughput(
                ds,
                algo(name).as_ref(),
                &qs,
                &VariantParams::high(),
                threads(),
            );
            print!(" {qps:>9.2}");
        }
        println!();
    }
}

/// Ablations: Sparta's design choices isolated (DESIGN.md §6).
fn ablations() {
    let ds = Dataset::cached(Scale::Cw);
    let m = 12;
    let t = threads();
    let qs: Vec<_> = ds.queries_of_length(m, queries_per_cell()).to_vec();
    let run =
        |label: &str, cfg_fn: &dyn Fn(sparta_core::SearchConfig) -> sparta_core::SearchConfig| {
            let exec = DedicatedExecutor::new(t);
            let base = VariantParams::exact().config(ds.k);
            let cfg = cfg_fn(base);
            let mut times = Vec::new();
            let mut postings = 0u64;
            let mut peak = 0u64;
            for q in &qs {
                let t0 = std::time::Instant::now();
                let r = algo("sparta").search(&ds.index, q, &cfg, &exec);
                times.push(t0.elapsed());
                postings += r.work.postings_scanned;
                peak = peak.max(r.work.docmap_peak);
            }
            times.sort();
            println!(
                "{label:>30}: mean {:>8}ms  postings/q {:>10}  docmap-peak {:>8}",
                fmt_ms(times.iter().sum::<Duration>() / times.len() as u32),
                postings / qs.len() as u64,
                peak
            );
        };
    println!("== Ablations: Sparta design choices, 12-term queries, exact ==");
    run("baseline (Φ=10k, seg=1024)", &|c| c);
    run("no term-local maps (Φ=0)", &|c| c.with_phi(0));
    run("per-posting UB (seg=1)", &|c| c.with_seg_size(1));
    run("small segments (seg=64)", &|c| c.with_seg_size(64));
    run("huge segments (seg=16384)", &|c| c.with_seg_size(16384));
    run("probabilistic pruning γ=0.9", &|c| c.with_prune_gamma(0.9));
    run("probabilistic pruning γ=0.7", &|c| c.with_prune_gamma(0.7));
    println!("(pNRA in Table 2 is the no-cleaner + no-local-maps + per-posting-UB ablation;");
    println!(" γ rows are the probabilistic-pruning extension — §6 future work — so their");
    println!(" results are approximate even without Δ)");
}

/// RAM-resident vs disk-resident indexes (§5: "in all cases, all
/// algorithms except pRA got similar results, which is not surprising
/// given that the algorithms traverse posting lists sequentially").
fn ramdisk() {
    use sparta_corpus::scoring::TfIdfScorer;
    use sparta_corpus::synth::{CorpusModel, SynthCorpus};
    use sparta_index::{DiskIndex, Index, IndexBuilder, IoModel};
    println!("== RAM-resident vs disk-resident (SSD model) index ==");
    let docs = sparta_bench::dataset::base_docs().min(20_000);
    let corpus = SynthCorpus::build(CorpusModel::clueweb_sim(docs, 42));
    let builder = IndexBuilder::new(TfIdfScorer);
    let ram: Arc<dyn Index> = Arc::new(builder.build_memory(&corpus));
    let dir = std::env::temp_dir().join(format!("sparta-repro-ramdisk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    builder.write_disk(&corpus, &dir).expect("write disk index");
    let disk: Arc<dyn Index> =
        Arc::new(DiskIndex::open(&dir, IoModel::ssd()).expect("open disk index"));
    let k = (docs / 100).clamp(10, 1000) as usize;
    let log = sparta_corpus::querylog::QueryLog::generate(corpus.stats(), 10, 12, 7);
    let cfg = VariantParams::high().config(k);
    let exec = DedicatedExecutor::new(threads());
    println!(
        "{:>7} {:>11} {:>11} {:>8}",
        "algo", "ram(ms)", "disk(ms)", "ratio"
    );
    for name in ["sparta", "pbmw", "pjass", "pra"] {
        let a = algo(name);
        let mut times = (Duration::ZERO, Duration::ZERO);
        let qs = log.of_length(8);
        for q in qs {
            let t0 = std::time::Instant::now();
            a.search(&ram, q, &cfg, &exec);
            times.0 += t0.elapsed();
            let t0 = std::time::Instant::now();
            a.search(&disk, q, &cfg, &exec);
            times.1 += t0.elapsed();
        }
        let n = qs.len() as u32;
        let (ram_t, disk_t) = (times.0 / n, times.1 / n);
        println!(
            "{name:>7} {:>11} {:>11} {:>7.1}x",
            fmt_ms(ram_t),
            fmt_ms(disk_t),
            disk_t.as_secs_f64() / ram_t.as_secs_f64().max(1e-9)
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("(paper: all algorithms except pRA are insensitive to disk residency;");
    println!(" pRA pays one random access per document scored)");
}

/// `load [flags]`: the open-loop latency-under-load sweep against the
/// admission controller (default: deterministic simulation) or a live
/// TCP server (`--tcp`). With `--emit-json <name>` the sweep is
/// embedded as the `"load"` block of `out/BENCH_<name>.json`.
///
/// Flags: `--qps a,b,c` offered rates, `--queries N` per level,
/// `--seed N`, `--burst N` (burst arrivals of size N instead of
/// Poisson), `--max-in-flight N`, `--queue-capacity N`,
/// `--service-us N` (simulated mean service time), `--tcp`,
/// `--backend raw|compressed` (posting backend the TCP server
/// serves from), `--latency-budget-ms X` (p99 budget the saturation
/// analysis detects the knee against).
fn load_cmd(args: &[String]) {
    use sparta_bench::{run_load_sim, run_load_tcp, BenchReport, LoadConfig};
    use sparta_server::admission::AdmissionConfig;
    use sparta_server::protocol::QueryRequest;
    use sparta_server::scheduler::BatchScheduler;

    let mut cfg = LoadConfig::default();
    let mut emit: Option<String> = None;
    let mut tcp = false;
    let mut backend = IndexKind::Raw;
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<'_, String>, flag: &str| -> String {
        it.next()
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--emit-json" => emit = Some(value(&mut it, arg)),
            "--seed" => cfg.seed = value(&mut it, arg).parse().expect("--seed: u64"),
            "--qps" => {
                cfg.qps_levels = value(&mut it, arg)
                    .split(',')
                    .map(|s| s.trim().parse().expect("--qps: comma-separated floats"))
                    .collect();
                assert!(!cfg.qps_levels.is_empty(), "--qps needs at least one level");
            }
            "--queries" => {
                cfg.queries_per_level = value(&mut it, arg).parse().expect("--queries: usize")
            }
            "--burst" => {
                cfg.burst_size = Some(value(&mut it, arg).parse().expect("--burst: usize"))
            }
            "--max-in-flight" => {
                cfg.admission = AdmissionConfig::new(
                    value(&mut it, arg).parse().expect("--max-in-flight: usize"),
                    cfg.admission.queue_capacity,
                )
            }
            "--queue-capacity" => {
                cfg.admission = AdmissionConfig::new(
                    cfg.admission.max_in_flight,
                    value(&mut it, arg)
                        .parse()
                        .expect("--queue-capacity: usize"),
                )
            }
            "--service-us" => {
                cfg.service_ns = value(&mut it, arg)
                    .parse::<u64>()
                    .expect("--service-us: u64")
                    * 1_000
            }
            "--tcp" => tcp = true,
            "--latency-budget-ms" => {
                cfg.latency_budget_ms = value(&mut it, arg)
                    .parse()
                    .expect("--latency-budget-ms: f64");
                assert!(
                    cfg.latency_budget_ms > 0.0,
                    "--latency-budget-ms must be positive"
                );
            }
            "--backend" => {
                let v = value(&mut it, arg);
                backend = IndexKind::parse(&v)
                    .unwrap_or_else(|| panic!("--backend: {v:?} is not raw|compressed"));
            }
            other => panic!("unknown load flag {other:?}"),
        }
    }

    let (load, docs, k, index) = if tcp {
        let ds = Dataset::cached_kind(Scale::Cw, backend);
        println!(
            "serving from {} index ({} bytes; raw build {} bytes)",
            ds.backend,
            ds.index.footprint().map(|f| f.total()).unwrap_or(0),
            ds.raw_footprint.total()
        );
        let metrics = sparta_obs::ServerMetrics::new();
        // Spans on: the sweep is also what CI scrapes `/debug/profile`
        // against, and phase attribution needs SpanBegin/SpanEnd events
        // in the server's flight-recorder rings.
        let scheduler = BatchScheduler::new(
            Arc::clone(&ds.index),
            sparta_core::SearchConfig::exact(ds.k).with_spans(true),
            threads(),
            cfg.admission,
            metrics,
        );
        let handle = sparta_server::serve_with_admin("127.0.0.1:0", "127.0.0.1:0", scheduler)
            .expect("bind loopback server");
        let requests: Vec<QueryRequest> = ds
            .queries_of_length(4, 64)
            .iter()
            .map(|q| QueryRequest {
                k: ds.k as u32,
                algorithm: "sparta".to_string(),
                terms: q.terms.clone(),
            })
            .collect();
        let report = run_load_tcp(
            handle.addr(),
            handle.metrics(),
            &cfg,
            &requests,
            handle.admin_addr(),
        );
        // Scrape the profiling plane while the server is still live:
        // the collapsed profile and the metrics-history ring both come
        // from the same sweep the report describes.
        if let Some(admin) = handle.admin_addr() {
            match sparta_server::http_get(admin, "/debug/profile?format=collapsed") {
                Ok((200, body)) => println!(
                    "debug profile scrape: {} collapsed lines",
                    body.lines().count()
                ),
                other => println!("debug profile scrape failed: {other:?}"),
            }
            match sparta_server::http_get(admin, "/debug/history") {
                Ok((200, body)) => {
                    let doc = sparta_obs::json::parse(&body).expect("history JSON parses");
                    let samples = doc
                        .get("samples")
                        .and_then(|s| s.as_arr())
                        .map_or(0, <[sparta_obs::json::Json]>::len);
                    let overwritten = doc
                        .get("overwritten")
                        .and_then(sparta_obs::json::Json::as_f64)
                        .unwrap_or(-1.0);
                    println!("debug history scrape: {samples} samples, overwritten={overwritten}");
                }
                other => println!("debug history scrape failed: {other:?}"),
            }
        }
        handle.shutdown();
        if let Some(scrape) = &report.server {
            let e2e = scrape
                .stages
                .iter()
                .find(|s| s.stage == "end_to_end")
                .map(|s| (s.count, s.sum_ns))
                .unwrap_or((0, 0));
            println!(
                "admin scrape: {} scrapes, monotone={}, server accepted={} shed={} e2e_count={} e2e_sum_ns={}",
                scrape.scrapes,
                scrape.monotone,
                scrape.snapshot.accepted,
                scrape.snapshot.shed,
                e2e.0,
                e2e.1
            );
        }
        let index = ds.index.footprint().map(|fp| sparta_bench::IndexReport {
            backend: ds.backend.name().to_string(),
            footprint_bytes: fp.total(),
            raw_footprint_bytes: ds.raw_footprint.total(),
        });
        (report, sparta_bench::dataset::base_docs(), ds.k, index)
    } else {
        (run_load_sim(&cfg), 0, 0, None)
    };

    println!(
        "load sweep: {} arrivals, mode={}, seed={:#x}, budget={} queue={}",
        load.arrival, load.mode, load.seed, load.max_in_flight, load.queue_capacity
    );
    println!(
        "{:>10} {:>8} {:>8} {:>6} {:>10} {:>10} {:>10} {:>9}",
        "offered/s", "accepted", "shed", "queued", "p50 ms", "p99 ms", "p999 ms", "depth_hw"
    );
    for l in &load.levels {
        let lat = |p: f64| {
            let sorted: Vec<Duration> = l
                .latencies_ns
                .iter()
                .map(|&n| Duration::from_nanos(n))
                .collect();
            sparta_bench::percentile(&sorted, p).as_secs_f64() * 1e3
        };
        println!(
            "{:>10.0} {:>8} {:>8} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>9}",
            l.offered_qps,
            l.snapshot.accepted,
            l.snapshot.shed,
            l.snapshot.queued,
            lat(0.50),
            lat(0.99),
            lat(0.999),
            l.snapshot.queue_depth_highwater
        );
    }
    if let Some(sat) = &load.saturation {
        println!(
            "saturation: knee_detected={} knee_qps={:.0} knee_p99_ms={:.3} dominant_wait={} \
             in_flight_utilization={:.2} (budget {} ms)",
            sat.knee_detected,
            sat.knee_qps,
            sat.knee_p99_ms,
            sat.dominant_wait,
            sat.in_flight_utilization,
            sat.latency_budget_ms
        );
    }

    if let Some(name) = emit {
        let report = BenchReport {
            name,
            docs,
            k,
            queries_per_cell: cfg.queries_per_level,
            terms_per_query: 0,
            cells: Vec::new(),
            index,
            recall_curves: Vec::new(),
            recorder: None,
            load: Some(load),
        };
        let path = report
            .write_to(std::path::Path::new("out"))
            .expect("write load JSON");
        println!(
            "wrote {} ({} levels)",
            path.display(),
            report.load.as_ref().unwrap().levels.len()
        );
    }
}

/// `--emit-json <name>`: measures the case-study grid (every parallel
/// algorithm × {exact, high} × {1, 2, SPARTA_THREADS} threads, on both
/// the raw and the compressed posting backends) and writes
/// `out/BENCH_<name>.json`. The report's `"index"` block carries the
/// compressed footprint against the raw build of the same corpus.
fn emit_json(name: &str) {
    let algorithms = ["sparta", "pnra", "snra", "pra", "pbmw", "pjass"];
    let variants = [VariantParams::exact(), VariantParams::high()];
    let mut thread_counts = vec![1, 2, threads()];
    thread_counts.sort_unstable();
    thread_counts.dedup();
    let build = |kind: IndexKind| {
        sparta_bench::export::build_report(
            Dataset::cached_kind(Scale::Cw, kind),
            name,
            &algorithms,
            &variants,
            &thread_counts,
            queries_per_cell(),
            6,
        )
    };
    let mut report = build(IndexKind::Raw);
    let compressed = build(IndexKind::Compressed);
    // One document, both backends: the compressed cells ride along and
    // the size accounting comes from the compressed dataset (which
    // also measured the raw build of the identical corpus).
    report.cells.extend(compressed.cells);
    report.index = compressed.index;
    if let Some(ix) = &report.index {
        println!(
            "index: compressed {} bytes vs raw {} bytes ({:.2}x smaller)",
            ix.footprint_bytes,
            ix.raw_footprint_bytes,
            ix.compression_ratio()
        );
    }
    let path = report
        .write_to(std::path::Path::new("out"))
        .expect("write benchmark JSON");
    println!(
        "wrote {} ({} cells, {} recall curves)",
        path.display(),
        report.cells.len(),
        report.recall_curves.len()
    );
}

/// The perf-guard cell is pinned end to end: corpus size, k, query
/// shape, and the deterministic schedule seed. Work counters from this
/// cell are bit-reproducible (see `same_seed_is_bit_identical`), so
/// the guard compares them for *equality* — any drift in
/// `postings_scanned` or `heap_updates` is an algorithmic change, not
/// noise, and must be acknowledged by regenerating the baseline.
const GUARD_DOCS: &str = "4000";
const GUARD_K: &str = "20";
const GUARD_SEED: u64 = 0x5eed_caf3;
const GUARD_QUERIES: usize = 4;
const GUARD_TERMS: usize = 6;
const GUARD_ALGOS: [&str; 4] = ["sparta", "pnra", "pbmw", "pjass"];

/// One guard cell's schedule-independent counters. `postings`/`heap`
/// are backend-independent on the bit-exact compressed format;
/// `blocks_skipped`/`blocks_decoded` are the compressed backend's
/// block-max-pruning and decode evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GuardCell {
    name: String,
    postings: u64,
    heap: u64,
    blocks_skipped: u64,
    blocks_decoded: u64,
}

impl GuardCell {
    fn get(&self, key: &str) -> u64 {
        match key {
            "postings_scanned" => self.postings,
            "heap_updates" => self.heap,
            "blocks_skipped" => self.blocks_skipped,
            "blocks_decoded" => self.blocks_decoded,
            other => panic!("unknown guard counter {other:?}"),
        }
    }
}

fn perf_guard_measure() -> Vec<GuardCell> {
    perf_guard_measure_kind(IndexKind::Raw)
}

fn perf_guard_measure_kind(kind: IndexKind) -> Vec<GuardCell> {
    std::env::set_var("SPARTA_DOCS", GUARD_DOCS);
    std::env::set_var("SPARTA_K", GUARD_K);
    // SPARTA_RECORDER=1 runs the same pinned schedules with a flight
    // recorder attached — the counters must not notice.
    let use_recorder = std::env::var("SPARTA_RECORDER")
        .map(|v| v == "1")
        .unwrap_or(false);
    let ds = Dataset::build_kind(Scale::Cw, kind);
    let qs = ds.queries_of_length(GUARD_TERMS, GUARD_QUERIES);
    let cfg = VariantParams::exact().config(ds.k);
    let io = ds.index.io_stats();
    GUARD_ALGOS
        .iter()
        .map(|&name| {
            let a = algo(name);
            let mut cell = GuardCell {
                name: name.to_string(),
                postings: 0,
                heap: 0,
                blocks_skipped: 0,
                blocks_decoded: 0,
            };
            for (i, q) in qs.iter().enumerate() {
                let mut exec =
                    sparta_exec::DeterministicExecutor::new(GUARD_SEED.wrapping_add(i as u64));
                if use_recorder {
                    let workers = exec.parallelism();
                    exec = exec.with_recorder(sparta_obs::FlightRecorder::new(
                        workers,
                        1 << 12,
                        sparta_obs::ClockMode::Logical,
                    ));
                }
                let decode0 = io.map(|s| s.decode_snapshot()).unwrap_or_default();
                let r = a.search(&ds.index, q, &cfg, &exec);
                let decode1 = io.map(|s| s.decode_snapshot()).unwrap_or_default();
                cell.postings += r.work.postings_scanned;
                cell.heap += r.work.heap_updates;
                cell.blocks_skipped += r.work.blocks_skipped;
                cell.blocks_decoded += decode1.0.saturating_sub(decode0.0);
            }
            cell
        })
        .collect()
}

fn perf_guard_json(cells: &[GuardCell], keys: &[&str]) -> sparta_obs::json::Json {
    use sparta_obs::json::Json;
    Json::obj()
        .with("schema_version", 1u64)
        .with("docs", GUARD_DOCS.parse::<u64>().unwrap())
        .with("k", GUARD_K.parse::<u64>().unwrap())
        .with("queries", GUARD_QUERIES)
        .with("terms", GUARD_TERMS)
        .with("seed", GUARD_SEED)
        .with(
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        let mut j = Json::obj().with("algorithm", c.name.as_str());
                        for &key in keys {
                            j = j.with(key, c.get(key));
                        }
                        j
                    })
                    .collect(),
            ),
        )
}

/// Shared guard body: with `write`, records `keys` of every cell into
/// `<baseline>`; otherwise compares for equality and exits non-zero on
/// any drift.
fn guard_against(path: &str, cells: &[GuardCell], keys: &[&str], write: bool) {
    if write {
        std::fs::write(path, perf_guard_json(cells, keys).to_pretty_string(2))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("{path}: baseline written ({} cells)", cells.len());
        return;
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let doc = sparta_obs::json::parse(&text).expect("baseline parses");
    let base = doc.get("cells").and_then(|c| c.as_arr()).unwrap_or(&[]);
    let mut drifted = false;
    for cell in cells {
        let name = cell.name.as_str();
        let Some(b) = base
            .iter()
            .find(|c| c.get("algorithm").and_then(|a| a.as_str()) == Some(name))
        else {
            eprintln!("{name}: missing from baseline {path}");
            drifted = true;
            continue;
        };
        for &key in keys {
            let got = cell.get(key);
            let want = b.get(key).and_then(|v| v.as_f64()).unwrap_or(-1.0);
            if want != got as f64 {
                eprintln!("{name}: {key} drifted — baseline {want}, measured {got}");
                drifted = true;
            } else {
                println!("{name}: {key} = {got} (matches baseline)");
            }
        }
    }
    if drifted {
        eprintln!(
            "perf guard FAILED; if the change is intentional, regenerate with \
             `repro --perf-guard {path} --write` (or --perf-guard-compressed)"
        );
        std::process::exit(1);
    }
    println!("perf guard ok ({} cells)", cells.len());
}

/// `--perf-guard <baseline> [--write]`: replays the pinned
/// deterministic cell on the raw backend. With `--write`, records the
/// counters into `<baseline>`; otherwise compares against the
/// checked-in baseline and exits non-zero on any drift.
fn perf_guard(path: &str, write: bool) {
    let cells = perf_guard_measure();
    guard_against(path, &cells, &["postings_scanned", "heap_updates"], write);
}

/// `--perf-guard-compressed <baseline> [--write]`: the same pinned
/// cell replayed on the compressed posting backend. Beyond the
/// equality check against its own baseline, this asserts the backend
/// actually exercises its machinery: every algorithm decodes blocks,
/// and pBMW's block-max pruning still skips block groups (admissible
/// quantized bounds would be pointless if pruning never fired).
fn perf_guard_compressed(path: &str, write: bool) {
    let cells = perf_guard_measure_kind(IndexKind::Compressed);
    for c in &cells {
        assert!(
            c.blocks_decoded > 0,
            "{}: compressed run decoded no blocks — the backend was not exercised",
            c.name
        );
        println!(
            "{}: blocks_decoded={} blocks_skipped={}",
            c.name, c.blocks_decoded, c.blocks_skipped
        );
    }
    let pbmw = cells
        .iter()
        .find(|c| c.name == "pbmw")
        .expect("pbmw is a guard algorithm");
    assert!(
        pbmw.blocks_skipped > 0,
        "pbmw skipped no blocks on the pinned cell — block-max pruning stopped firing"
    );
    guard_against(
        path,
        &cells,
        &[
            "postings_scanned",
            "heap_updates",
            "blocks_skipped",
            "blocks_decoded",
        ],
        write,
    );
}

/// `--emit-trace <name>`: replays the pinned perf-guard cell under the
/// deterministic executor with a logical-clock flight recorder
/// attached, and writes the per-worker timeline as Chrome trace-event
/// JSON (`out/TRACE_<name>.json`, loadable in chrome://tracing or
/// Perfetto). Deterministic end to end: two runs emit byte-identical
/// files.
fn emit_trace(trace_name: &str) {
    std::env::set_var("SPARTA_DOCS", GUARD_DOCS);
    std::env::set_var("SPARTA_K", GUARD_K);
    let ds = Dataset::build(Scale::Cw);
    let qs = ds.queries_of_length(GUARD_TERMS, GUARD_QUERIES);
    let rec = sparta_obs::FlightRecorder::new(4, 1 << 15, sparta_obs::ClockMode::Logical);
    let cfg = VariantParams::exact()
        .config(ds.k)
        .with_trace(true)
        .with_spans(true)
        .with_clock(sparta_obs::ClockMode::Logical);
    for &name in &GUARD_ALGOS {
        let a = algo(name);
        for (i, q) in qs.iter().enumerate() {
            let exec = sparta_exec::DeterministicExecutor::new(GUARD_SEED.wrapping_add(i as u64))
                .with_recorder(Arc::clone(&rec));
            a.search(&ds.index, q, &cfg, &exec);
        }
    }
    let text = sparta_obs::chrome_trace_string(&rec);
    let path = sparta_bench::out_path(
        std::path::Path::new("out"),
        &format!("TRACE_{trace_name}"),
        "json",
    )
    .expect("resolve trace path");
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!(
        "wrote {} ({} events recorded, {} dropped, {} workers)",
        path.display(),
        rec.total_events(),
        rec.dropped_events(),
        rec.worker_count()
    );
}

/// `profile [name] [--collapsed]`: replays the pinned perf-guard cell
/// under the deterministic executor with a logical-clock flight
/// recorder, folds the rings into an aggregate profile (per-worker
/// utilization breakdown, contention sites, per-phase self time), and
/// writes it to `out/PROFILE_<name>.json`. Deterministic end to end:
/// two runs emit byte-identical files, so CI pins the bytes. With
/// `--collapsed`, also prints the flamegraph-collapsed rendering
/// (pipe into `flamegraph.pl`).
fn profile_cmd(args: &[String]) {
    let mut profile_name = "run".to_string();
    let mut collapsed = false;
    for arg in args {
        match arg.as_str() {
            "--collapsed" => collapsed = true,
            other if !other.starts_with("--") => profile_name = other.to_string(),
            other => panic!("unknown profile flag {other:?}"),
        }
    }
    std::env::set_var("SPARTA_DOCS", GUARD_DOCS);
    std::env::set_var("SPARTA_K", GUARD_K);
    let ds = Dataset::build(Scale::Cw);
    let qs = ds.queries_of_length(GUARD_TERMS, GUARD_QUERIES);
    let rec = sparta_obs::FlightRecorder::new(4, 1 << 15, sparta_obs::ClockMode::Logical);
    let cfg = VariantParams::exact()
        .config(ds.k)
        .with_trace(true)
        .with_spans(true)
        .with_clock(sparta_obs::ClockMode::Logical);
    for &name in &GUARD_ALGOS {
        let a = algo(name);
        for (i, q) in qs.iter().enumerate() {
            let exec = sparta_exec::DeterministicExecutor::new(GUARD_SEED.wrapping_add(i as u64))
                .with_recorder(Arc::clone(&rec));
            a.search(&ds.index, q, &cfg, &exec);
        }
    }
    let profile = sparta_obs::profile_recorder(&rec, sparta_obs::DEFAULT_TOP_SITES);
    let text = profile.to_json().to_pretty_string(2);
    sparta_obs::validate_profile_json(&text)
        .unwrap_or_else(|e| panic!("emitted profile violates its own schema: {e}"));
    let path = sparta_bench::out_path(
        std::path::Path::new("out"),
        &format!("PROFILE_{profile_name}"),
        "json",
    )
    .expect("resolve profile path");
    std::fs::write(&path, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!(
        "{:>7} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "worker", "events", "busy", "parked", "queue", "lock"
    );
    for w in &profile.workers {
        println!(
            "{:>7} {:>8} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            w.worker,
            w.events,
            100.0 * w.busy_fraction(),
            100.0 * w.parked_fraction(),
            100.0 * w.queue_wait_fraction(),
            100.0 * w.lock_wait_fraction()
        );
    }
    for p in &profile.phases {
        println!(
            "phase {:>12}: count {:>6} inclusive {:>10} self {:>10}",
            p.phase.as_str(),
            p.count,
            p.total_ticks,
            p.self_ticks
        );
    }
    if collapsed {
        print!("{}", profile.to_collapsed());
    }
    println!(
        "wrote {} ({} events folded, {} dropped, {} skipped reads, dominant_wait={})",
        path.display(),
        profile.events_folded,
        profile.dropped_events,
        profile.skipped_reads,
        profile.dominant_wait().unwrap_or("none")
    );
}

/// `--validate-trace <path>`: parses an emitted Chrome trace and checks
/// the schema, exiting non-zero on any drift.
fn validate_trace(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    match sparta_obs::validate_trace_json(&text) {
        Ok(()) => println!("{path}: trace schema ok"),
        Err(e) => {
            eprintln!("{path}: trace schema violation: {e}");
            std::process::exit(1);
        }
    }
}

/// `--recorder-overhead [reps]`: measures the flight recorder's cost on
/// the pinned guard cell — p50 latency with the recorder off vs on
/// (wall clock, dedicated executor) plus a counter-identity check under
/// the deterministic schedules. Prints an EXPERIMENTS.md-ready line.
fn recorder_overhead(reps: usize) {
    // Counters first: the recorder must not change the work done.
    std::env::remove_var("SPARTA_RECORDER");
    let base = perf_guard_measure();
    std::env::set_var("SPARTA_RECORDER", "1");
    let with = perf_guard_measure();
    std::env::remove_var("SPARTA_RECORDER");
    assert_eq!(
        base, with,
        "work counters drifted between recorder-off and recorder-on runs"
    );
    println!(
        "counters identical on vs off ({} algorithm cells)",
        base.len()
    );
    // Timing: guard queries, wall clock, recorder off vs on.
    let ds = Dataset::build(Scale::Cw);
    let qs: Vec<_> = ds.queries_of_length(GUARD_TERMS, GUARD_QUERIES).to_vec();
    let params = VariantParams::exact();
    let t = threads();
    let measure = |rec: Option<&Arc<sparta_obs::FlightRecorder>>| -> f64 {
        let mut p50s = Vec::new();
        for _ in 0..reps {
            for &name in &GUARD_ALGOS {
                let s = sparta_bench::measure::run_latency_with(
                    &ds,
                    algo(name).as_ref(),
                    &qs,
                    &params,
                    t,
                    false,
                    rec,
                );
                p50s.push(s.percentile(0.5).as_secs_f64() * 1e3);
            }
        }
        p50s.iter().sum::<f64>() / p50s.len().max(1) as f64
    };
    // Warm both paths once so first-touch costs don't skew either side.
    let warm_rec = sparta_obs::FlightRecorder::new(t, 1 << 12, sparta_obs::ClockMode::Wall);
    let _ = measure(None);
    let _ = measure(Some(&warm_rec));
    let off = measure(None);
    let rec = sparta_obs::FlightRecorder::new(t, 1 << 12, sparta_obs::ClockMode::Wall);
    let on = measure(Some(&rec));
    let overhead = (on - off) / off * 100.0;
    println!(
        "recorder overhead: mean p50 off {off:.3}ms, on {on:.3}ms, {overhead:+.2}% \
         ({} events recorded, {} dropped, reps={reps}, threads={t})",
        rec.total_events(),
        rec.dropped_events()
    );
}

/// `--validate-json <path>`: parses an emitted document and checks the
/// schema, exiting non-zero on any drift.
fn validate_json(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    match sparta_bench::validate_bench_json(&text) {
        Ok(()) => println!("{path}: schema ok"),
        Err(e) => {
            eprintln!("{path}: schema violation: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--emit-json") => {
            let name = args.get(1).map(String::as_str).unwrap_or("run");
            emit_json(name);
            return;
        }
        Some("--validate-json") => {
            let path = args.get(1).expect("--validate-json needs a path");
            validate_json(path);
            return;
        }
        Some("--emit-trace") => {
            let name = args.get(1).map(String::as_str).unwrap_or("run");
            emit_trace(name);
            return;
        }
        Some("--validate-trace") => {
            let path = args.get(1).expect("--validate-trace needs a path");
            validate_trace(path);
            return;
        }
        Some("--recorder-overhead") => {
            let reps = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
            recorder_overhead(reps);
            return;
        }
        Some("load") => {
            load_cmd(&args[1..]);
            return;
        }
        Some("profile") => {
            profile_cmd(&args[1..]);
            return;
        }
        Some("--perf-guard") => {
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--write")
                .map(String::as_str)
                .unwrap_or("BENCH_perf_guard.json");
            perf_guard(path, args.iter().any(|a| a == "--write"));
            return;
        }
        Some("--perf-guard-compressed") => {
            let path = args
                .iter()
                .skip(1)
                .find(|a| *a != "--write")
                .map(String::as_str)
                .unwrap_or("BENCH_perf_guard_compressed.json");
            perf_guard_compressed(path, args.iter().any(|a| a == "--write"));
            return;
        }
        _ => {}
    }
    let what = args.first().map(String::as_str).unwrap_or("all");
    let t0 = std::time::Instant::now();
    println!(
        "sparta repro: docs={} (x10={}), k={}, threads={}, queries/cell={}\n",
        sparta_bench::dataset::base_docs(),
        sparta_bench::dataset::base_docs() * 10,
        Dataset::cached(Scale::Cw).k,
        threads(),
        queries_per_cell()
    );
    let all = what == "all";
    if all || what == "table2" {
        table2();
        println!();
    }
    if all || what == "table3" {
        table3();
        println!();
    }
    if all || what == "table4" {
        table4();
        println!();
    }
    if all || what == "fig3a" {
        fig3_latency(Scale::Cw, false, "3a");
        println!();
    }
    if all || what == "fig3b" {
        fig3_latency(Scale::Cw, true, "3b");
        println!();
    }
    if all || what == "fig3c" {
        fig3_latency(Scale::CwX10, false, "3c");
        println!();
    }
    if all || what == "fig3d" {
        fig3_low(Scale::Cw, false, "3d");
        println!();
    }
    if all || what == "fig3e" {
        fig3_low(Scale::Cw, true, "3e");
        println!();
    }
    if all || what == "fig3f" {
        fig3_dynamics(Scale::Cw, "3f");
        println!();
    }
    if all || what == "fig3g" {
        fig3_dynamics(Scale::CwX10, "3g");
        println!();
    }
    if all || what == "fig3h" {
        fig3_parallelism(Scale::Cw, "3h");
        println!();
    }
    if all || what == "fig3i" {
        fig3_parallelism(Scale::CwX10, "3i");
        println!();
    }
    if all || what == "fig4" {
        fig4();
        println!();
    }
    if all || what == "ablations" {
        ablations();
        println!();
    }
    if all || what == "ramdisk" {
        ramdisk();
        println!();
    }
    eprintln!("[{what} done in {:.1?}]", t0.elapsed());
}
