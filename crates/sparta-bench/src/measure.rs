//! Measurement helpers: latency statistics, recall aggregation, and
//! the throughput driver of §5.1.

use crate::dataset::Dataset;
use crate::variants::VariantParams;
use sparta_core::result::WorkStats;
use sparta_core::Algorithm;
use sparta_corpus::types::Query;
use sparta_exec::{DedicatedExecutor, WorkerPool};
use sparta_obs::{ExecMetrics, ExecSnapshot, FlightRecorder};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Latency distribution over a query batch.
#[derive(Debug, Clone)]
pub struct LatencyStats {
    /// Per-query latencies, sorted ascending.
    pub sorted: Vec<Duration>,
    /// Mean recall over the batch (1.0 when exactness was verified).
    pub mean_recall: f64,
    /// Summed work counters.
    pub work: WorkStats,
    /// Executor-side metrics aggregated over the batch.
    pub exec: ExecSnapshot,
}

impl LatencyStats {
    /// Mean latency.
    pub fn mean(&self) -> Duration {
        if self.sorted.is_empty() {
            return Duration::ZERO;
        }
        self.sorted.iter().sum::<Duration>() / self.sorted.len() as u32
    }

    /// p-th percentile latency (p in 0..=1).
    pub fn percentile(&self, p: f64) -> Duration {
        percentile(&self.sorted, p)
    }
}

/// p-th percentile of a sorted slice.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

/// Runs `algo` over `queries` in latency mode (`threads` dedicated
/// workers per query, §5.1) and measures latency + recall.
pub fn run_latency(
    ds: &Dataset,
    algo: &dyn Algorithm,
    queries: &[Query],
    params: &VariantParams,
    threads: usize,
    measure_recall: bool,
) -> LatencyStats {
    run_latency_with(ds, algo, queries, params, threads, measure_recall, None)
}

/// [`run_latency`] with an optional flight recorder attached to the
/// executor — used by recorder-overhead measurements and
/// `SPARTA_RECORDER=1` report builds.
pub fn run_latency_with(
    ds: &Dataset,
    algo: &dyn Algorithm,
    queries: &[Query],
    params: &VariantParams,
    threads: usize,
    measure_recall: bool,
    recorder: Option<&Arc<FlightRecorder>>,
) -> LatencyStats {
    let metrics = ExecMetrics::new(threads.max(1));
    let mut exec = DedicatedExecutor::instrumented(threads.max(1), Arc::clone(&metrics));
    if let Some(r) = recorder {
        exec = exec.with_recorder(Arc::clone(r));
    }
    let cfg = params.config(ds.k);
    let mut sorted = Vec::with_capacity(queries.len());
    let mut recall_sum = 0.0;
    let mut work = WorkStats::default();
    // The index's block-decode counters are cumulative; queries run
    // sequentially here, so per-query deltas attribute every decoded
    // block (and its compressed bytes) to the query that touched it.
    let io = ds.index.io_stats();
    for q in queries {
        let decode0 = io.map(|s| s.decode_snapshot()).unwrap_or_default();
        let t0 = Instant::now();
        let mut r = algo.search(&ds.index, q, &cfg, &exec);
        sorted.push(t0.elapsed());
        let decode1 = io.map(|s| s.decode_snapshot()).unwrap_or_default();
        r.work.blocks_decoded += decode1.0.saturating_sub(decode0.0);
        r.work.compressed_bytes += decode1.1.saturating_sub(decode0.1);
        if measure_recall {
            recall_sum += ds.oracle(q).recall(&r.docs());
        } else {
            recall_sum += 1.0;
        }
        work.merge(&r.work);
    }
    sorted.sort();
    LatencyStats {
        mean_recall: recall_sum / queries.len().max(1) as f64,
        sorted,
        work,
        exec: metrics.snapshot(),
    }
}

/// Runs the throughput mode of §5.1: all queries submitted FCFS to a
/// shared pool of `pool_threads`, multiple driver threads keeping the
/// pool saturated. Returns queries/second.
pub fn run_throughput(
    ds: &Dataset,
    algo: &dyn Algorithm,
    mix: &[Query],
    params: &VariantParams,
    pool_threads: usize,
) -> f64 {
    let pool = Arc::new(WorkerPool::new(pool_threads));
    let cfg = params.config(ds.k);
    let next = AtomicUsize::new(0);
    let drivers = pool_threads.clamp(2, 4);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..drivers {
            let pool = Arc::clone(&pool);
            let next = &next;
            let cfg = &cfg;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= mix.len() {
                    break;
                }
                algo.search(&ds.index, &mix[i], cfg, pool.as_ref());
            });
        }
    });
    let elapsed = t0.elapsed();
    mix.len() as f64 / elapsed.as_secs_f64()
}

/// Convenience: the mean latency of one (algorithm, length) cell.
pub fn mean_latency_cell(
    ds: &Dataset,
    algo: &dyn Algorithm,
    m: usize,
    n_queries: usize,
    params: &VariantParams,
    threads: usize,
) -> LatencyStats {
    let queries: Vec<Query> = ds.queries_of_length(m, n_queries).to_vec();
    run_latency(ds, algo, &queries, params, threads, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_expected_entries() {
        let v: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&v, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&v, 1.0), Duration::from_millis(100));
        assert_eq!(percentile(&v, 0.95), Duration::from_millis(95));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn latency_stats_mean() {
        let s = LatencyStats {
            sorted: vec![Duration::from_millis(10), Duration::from_millis(30)],
            mean_recall: 1.0,
            work: WorkStats::default(),
            exec: ExecSnapshot::default(),
        };
        assert_eq!(s.mean(), Duration::from_millis(20));
    }
}
