//! Open-loop arrival processes for the load harness.
//!
//! An **open-loop** generator decides arrival instants ahead of time
//! from the offered rate alone — queries arrive whether or not the
//! server has kept up, which is what exposes queueing and shedding
//! (a closed loop would self-throttle and hide the knee). Schedules
//! are pure functions of `(process, n, seed)`: integer nanoseconds
//! from a seeded SplitMix64, so the same seed replays byte-identically
//! on any host.

/// How query arrivals are spaced in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival times with mean
    /// `1/qps` (the classic M/·/· offered load).
    Poisson {
        /// Offered rate, queries per second.
        qps: f64,
    },
    /// Clustered arrivals: groups of `burst_size` queries land
    /// (almost) together, groups spaced so the *average* rate is still
    /// `qps`. Stresses admission much harder than Poisson at the same
    /// offered rate.
    Burst {
        /// Average offered rate, queries per second.
        qps: f64,
        /// Queries per burst.
        burst_size: usize,
    },
}

impl ArrivalProcess {
    /// Short label used in reports ("poisson" / "burst").
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Burst { .. } => "burst",
        }
    }

    /// The configured average offered rate.
    pub fn qps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { qps } => qps,
            ArrivalProcess::Burst { qps, .. } => qps,
        }
    }

    /// Arrival instants for `n` queries as nanosecond offsets from the
    /// start of the run, sorted ascending. Deterministic in
    /// `(self, n, seed)`.
    pub fn schedule(&self, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::with_capacity(n);
        match *self {
            ArrivalProcess::Poisson { qps } => {
                assert!(qps > 0.0, "offered rate must be positive");
                let mut t = 0u64;
                for _ in 0..n {
                    t = t.saturating_add(exp_ns(&mut rng, qps));
                    out.push(t);
                }
            }
            ArrivalProcess::Burst { qps, burst_size } => {
                assert!(qps > 0.0, "offered rate must be positive");
                assert!(burst_size >= 1, "burst size must be at least 1");
                // Bursts are spaced so the long-run rate is `qps`;
                // inside a burst, queries spread over 1% of the
                // inter-burst gap with seeded jitter.
                let gap_ns = (burst_size as f64 / qps * 1e9) as u64;
                let spread = (gap_ns / 100).max(1);
                let mut burst = 0u64;
                let mut in_burst = 0usize;
                for _ in 0..n {
                    if in_burst == burst_size {
                        in_burst = 0;
                        burst += 1;
                    }
                    let jitter = rng.next_u64() % spread;
                    out.push(burst.saturating_mul(gap_ns).saturating_add(jitter));
                    in_burst += 1;
                }
                out.sort_unstable();
            }
        }
        out
    }
}

/// One exponential inter-arrival gap with rate `qps`, in nanoseconds
/// (inverse-CDF on a uniform in (0, 1]; at least 1 ns so time always
/// advances).
fn exp_ns(rng: &mut SplitMix64, qps: f64) -> u64 {
    let u = rng.next_f64();
    let gap = -(u.ln()) / qps * 1e9;
    (gap as u64).max(1)
}

/// The same tiny seeded generator the deterministic executor uses —
/// local copy so schedules cannot drift if the executor's evolves.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in (0, 1] — never 0, so `ln` is finite.
    pub fn next_f64(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 significant bits
        (bits + 1) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_schedule_is_sorted_and_exact_count() {
        let p = ArrivalProcess::Poisson { qps: 1000.0 };
        let s = p.schedule(500, 42);
        assert_eq!(s.len(), 500);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn burst_schedule_clusters() {
        let p = ArrivalProcess::Burst {
            qps: 1000.0,
            burst_size: 10,
        };
        let s = p.schedule(100, 7);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        // Ten bursts of ten: the gap between consecutive bursts is two
        // orders of magnitude larger than the spread within one.
        let gap_ns = (10.0 / 1000.0 * 1e9) as u64;
        for b in 0..10 {
            let chunk = &s[b * 10..(b + 1) * 10];
            let lo = *chunk.first().unwrap();
            let hi = *chunk.last().unwrap();
            assert!(hi - lo <= gap_ns / 100, "burst {b} spread too wide");
        }
    }
}
