//! Variant parameterizations (§5.3).
//!
//! The paper instantiates "A-exact", "A-high" (empirical recall ≥ 96%)
//! and "A-low" per algorithm with Δ = 10 ms, f ∈ {5, 10},
//! p ∈ {0.02, 0.005}. Those constants are tuned to ClueWeb at 50M
//! docs on their hardware; on a scaled-down synthetic corpus the same
//! recall operating points correspond to different constants (e.g.
//! smaller f — Θ saturates much faster on a small index). We therefore
//! keep the *paper* constants available verbatim and provide
//! *calibrated* equivalents that hit the high/low recall bands at this
//! reproduction's scale. The `repro` binary prints which set it used;
//! EXPERIMENTS.md discusses the mapping.

use sparta_core::config::SearchConfig;
use std::time::Duration;

/// A named parameter set for one experiment cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariantParams {
    /// Label suffix ("exact", "high", "low").
    pub label: &'static str,
    /// Δ for the TA family (None = exact).
    pub delta: Option<Duration>,
    /// pBMW pruning factor f.
    pub bmw_f: f64,
    /// pJASS posting fraction p.
    pub jass_p: f64,
    /// Record heap traces.
    pub trace: bool,
}

impl VariantParams {
    /// Exact/safe parameters.
    pub fn exact() -> Self {
        Self {
            label: "exact",
            delta: None,
            bmw_f: 1.0,
            jass_p: 1.0,
            trace: false,
        }
    }

    /// The paper's high-recall constants, verbatim (§5.3).
    pub fn paper_high() -> Self {
        Self {
            label: "high",
            delta: Some(Duration::from_millis(10)),
            bmw_f: 5.0,
            jass_p: 0.02,
            trace: false,
        }
    }

    /// The paper's low-recall constants, verbatim (§5.3).
    pub fn paper_low() -> Self {
        Self {
            label: "low",
            delta: Some(Duration::from_millis(2)),
            bmw_f: 10.0,
            jass_p: 0.005,
            trace: false,
        }
    }

    /// High-recall operating point calibrated for this reproduction's
    /// corpus scale (recall ≥ ~96% on the default 20k-doc corpus).
    pub fn high() -> Self {
        Self {
            label: "high",
            delta: Some(Duration::from_millis(10)),
            bmw_f: 1.1,
            jass_p: 0.9,
            trace: false,
        }
    }

    /// Low-recall operating point calibrated for this scale
    /// (recall ≈ 80%, the paper's pBMW-low band).
    pub fn low() -> Self {
        Self {
            label: "low",
            delta: Some(Duration::from_millis(1)),
            bmw_f: 1.5,
            jass_p: 0.5,
            trace: false,
        }
    }

    /// Enables heap tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Materializes a [`SearchConfig`] for result-set size `k`.
    pub fn config(&self, k: usize) -> SearchConfig {
        SearchConfig::exact(k)
            .with_delta(self.delta)
            .with_bmw_f(self.bmw_f)
            .with_jass_p(self.jass_p)
            .with_trace(self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_safe() {
        let c = VariantParams::exact().config(100);
        assert!(c.is_exact());
        assert_eq!(c.bmw_f, 1.0);
        assert_eq!(c.jass_p, 1.0);
    }

    #[test]
    fn paper_constants_match_section_5_3() {
        let h = VariantParams::paper_high();
        assert_eq!(h.delta, Some(Duration::from_millis(10)));
        assert_eq!(h.bmw_f, 5.0);
        assert_eq!(h.jass_p, 0.02);
        let l = VariantParams::paper_low();
        assert_eq!(l.bmw_f, 10.0);
        assert_eq!(l.jass_p, 0.005);
    }

    #[test]
    fn calibrated_low_prunes_harder_than_high() {
        let (h, l) = (VariantParams::high(), VariantParams::low());
        assert!(l.bmw_f > h.bmw_f);
        assert!(l.jass_p < h.jass_p);
    }
}
