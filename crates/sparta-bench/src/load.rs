//! Latency-under-load: the open-loop harness that drives the query
//! server's admission controller across offered-QPS levels.
//!
//! Two modes share one report shape:
//!
//! * **Simulated** ([`run_load_sim`]) — an event-driven simulation on
//!   a virtual nanosecond timeline. Arrivals come from a seeded
//!   [`ArrivalProcess`]; each admitted query "runs" for a seeded
//!   service time; the *real* [`AdmissionController`] makes every
//!   admit/queue/shed decision, so its accounting and FIFO grant
//!   policy are what the curves measure. No wall clock anywhere:
//!   the same seed yields a byte-identical report on any machine.
//! * **TCP** ([`run_load_tcp`]) — the same arrival schedule paced in
//!   real time against a live [`sparta_server`] instance over
//!   loopback, measuring true end-to-end latency (not reproducible
//!   byte-for-byte; CI validates its schema, not its bytes). When the
//!   server exposes an admin port, the harness scrapes `/metrics` at
//!   every sweep boundary and folds the server-side truth — admission
//!   counters, queue high-water, per-stage latency totals — into the
//!   report as a [`ServerScrape`], cross-checking that every scraped
//!   counter is monotone across the sweep.
//!
//! Each level reports p50/p99/p999 latency, the admission counters
//! (accepted/queued/shed/abandoned/completed), and a queue-depth
//! series — the "latency-under-load curve" of the service writeup.
//!
//! Every report closes with a **saturation analysis**
//! ([`SaturationReport`]): the knee — the lowest offered QPS whose p99
//! exceeds the latency budget — plus the in-flight utilization and the
//! dominant wait class at that level, so a sweep answers not just
//! "where does it fall over" but "what it was waiting on when it did".

use crate::arrival::{ArrivalProcess, SplitMix64};
use crate::measure::percentile;
use sparta_obs::json::Json;
use sparta_obs::ServerSnapshot;
use sparta_server::admission::{AdmissionConfig, AdmissionController, Permit, QueueSlot, TryAdmit};
use sparta_server::protocol::{Frame, QueryRequest};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Default p99 budget for knee detection, in milliseconds. Chosen so
/// the default simulated sweep (2 ms mean service, 2000 qps capacity)
/// stays inside the budget at 200 qps and blows through it at 5000.
pub const DEFAULT_LATENCY_BUDGET_MS: f64 = 10.0;

/// Parameters shared by every level of one load run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered rates to sweep (queries per second).
    pub qps_levels: Vec<f64>,
    /// Queries offered per level.
    pub queries_per_level: usize,
    /// Burst size; `None` = Poisson arrivals.
    pub burst_size: Option<usize>,
    /// Root seed; each level derives its own stream from it.
    pub seed: u64,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Mean simulated service time per query, nanoseconds (sim mode).
    pub service_ns: u64,
    /// p99 budget (milliseconds) the saturation analysis detects the
    /// knee against.
    pub latency_budget_ms: f64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            // Sweep from well under to well over the simulated
            // capacity (max_in_flight / service_time = 2000 qps), so
            // the curve shows the knee and the shedding regime.
            qps_levels: vec![200.0, 1000.0, 5000.0],
            queries_per_level: 200,
            burst_size: None,
            seed: 0x5EED_10AD,
            admission: AdmissionConfig::new(4, 16),
            service_ns: 2_000_000,
            latency_budget_ms: DEFAULT_LATENCY_BUDGET_MS,
        }
    }
}

impl LoadConfig {
    /// The arrival process at `qps`.
    pub fn process(&self, qps: f64) -> ArrivalProcess {
        match self.burst_size {
            Some(burst_size) => ArrivalProcess::Burst { qps, burst_size },
            None => ArrivalProcess::Poisson { qps },
        }
    }
}

/// Measurements for one offered-QPS level.
#[derive(Debug, Clone)]
pub struct LoadLevel {
    /// Offered rate this level was driven at.
    pub offered_qps: f64,
    /// Queries offered.
    pub offered: u64,
    /// Admission counters over this level (delta, not cumulative).
    pub snapshot: ServerSnapshot,
    /// Completed-query latencies in nanoseconds, sorted ascending.
    pub latencies_ns: Vec<u64>,
    /// `(t_ns, depth)` whenever the wait-queue depth changed.
    pub queue_depth: Vec<(u64, u64)>,
}

/// One stage's scraped totals from the admin `/metrics` exposition.
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage label (`admission_wait`, …) or `end_to_end`.
    pub stage: String,
    /// Scraped `_count` — completed queries measured in this stage.
    pub count: u64,
    /// Scraped `_sum` — total nanoseconds spent in this stage.
    pub sum_ns: u64,
}

/// Server-side truth scraped from the admin `/metrics` endpoint at the
/// end of a TCP sweep — the cross-check that client-observed load and
/// server-recorded load tell the same story.
#[derive(Debug, Clone)]
pub struct ServerScrape {
    /// Successful scrapes over the sweep (boundaries + final).
    pub scrapes: u64,
    /// Whether every monotone series (`*_total`, `*_sum`, `*_count`,
    /// `*_bucket`) was non-decreasing across consecutive scrapes.
    pub monotone: bool,
    /// Cumulative admission counters from the final scrape.
    pub snapshot: ServerSnapshot,
    /// Per-stage latency totals from the final scrape.
    pub stages: Vec<StageStat>,
}

impl ServerScrape {
    /// Serializes the scrape (the load block's `"server"` field).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("scrapes", self.scrapes)
            .with("monotone", self.monotone)
            .with("attempts", self.snapshot.attempts())
            .with("accepted", self.snapshot.accepted)
            .with("queued", self.snapshot.queued)
            .with("shed", self.snapshot.shed)
            .with("abandoned", self.snapshot.abandoned)
            .with("completed", self.snapshot.completed)
            .with("queue_depth_highwater", self.snapshot.queue_depth_highwater)
            .with("in_flight_highwater", self.snapshot.in_flight_highwater)
            .with(
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::obj()
                                .with("stage", s.stage.as_str())
                                .with("count", s.count)
                                .with("sum_ns", s.sum_ns)
                        })
                        .collect(),
                ),
            )
    }
}

/// The saturation verdict of one sweep: where the latency budget was
/// first exceeded and what the service was doing there.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// The p99 budget the knee was detected against, milliseconds.
    pub latency_budget_ms: f64,
    /// Whether any level's p99 exceeded the budget.
    pub knee_detected: bool,
    /// Lowest offered QPS whose p99 exceeded the budget; when no level
    /// did, the highest offered QPS swept (the knee lies beyond it).
    pub knee_qps: f64,
    /// p99 at the knee level, milliseconds.
    pub knee_p99_ms: f64,
    /// Dominant wait class at the knee: the stage with the largest
    /// scraped time total (`admission_wait` / `queue_wait` / `execute`
    /// / `response_write`) in TCP mode, the queueing-vs-service split
    /// in sim mode, `"unknown"` when neither source is available.
    pub dominant_wait: String,
    /// `in_flight_highwater / max_in_flight` at the knee level — 1.0
    /// means the pool's concurrency budget was fully used.
    pub in_flight_utilization: f64,
}

impl SaturationReport {
    /// Serializes the analysis (the load block's `"saturation"` field).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("latency_budget_ms", self.latency_budget_ms)
            .with("knee_detected", self.knee_detected)
            .with("knee_qps", self.knee_qps)
            .with("knee_p99_ms", self.knee_p99_ms)
            .with("dominant_wait", self.dominant_wait.as_str())
            .with("in_flight_utilization", self.in_flight_utilization)
    }
}

/// p99 of a sorted nanosecond latency series, in milliseconds.
fn p99_ms(latencies_ns: &[u64]) -> f64 {
    let sorted: Vec<Duration> = latencies_ns
        .iter()
        .map(|&n| Duration::from_nanos(n))
        .collect();
    percentile(&sorted, 0.99).as_secs_f64() * 1e3
}

/// Detects the knee and characterizes the service there.
///
/// The knee is the lowest offered QPS whose p99 exceeds
/// `budget_ms` (levels are scanned in sweep order, which the harness
/// drives in ascending offered rate). When every level stays inside
/// the budget, the analysis reports the last level with
/// `knee_detected: false` — the best statement the sweep supports is
/// "the knee lies beyond the highest rate offered".
///
/// Wait-class attribution prefers server-side truth: with an admin
/// scrape, the stage whose scraped time total dominates names the
/// class (sweep-cumulative — per-level stage deltas are not scraped).
/// In sim mode the split is exact per level: total latency minus the
/// completed queries' expected service time is time spent queued.
pub fn analyze_saturation(
    levels: &[LoadLevel],
    max_in_flight: u64,
    service_ns: u64,
    budget_ms: f64,
    server: Option<&ServerScrape>,
) -> Option<SaturationReport> {
    let knee = levels
        .iter()
        .find(|level| p99_ms(&level.latencies_ns) > budget_ms);
    let detected = knee.is_some();
    let level = knee.or_else(|| levels.last())?;
    let dominant_wait = match server {
        Some(scrape) => scrape
            .stages
            .iter()
            .filter(|s| s.stage != "end_to_end")
            .max_by_key(|s| s.sum_ns)
            .map_or_else(|| "unknown".to_string(), |s| s.stage.clone()),
        None if service_ns > 0 => {
            let total: u64 = level.latencies_ns.iter().sum();
            let exec = level.snapshot.completed * service_ns;
            if total.saturating_sub(exec) > exec {
                "queue_wait".to_string()
            } else {
                "execute".to_string()
            }
        }
        None => "unknown".to_string(),
    };
    Some(SaturationReport {
        latency_budget_ms: budget_ms,
        knee_detected: detected,
        knee_qps: level.offered_qps,
        knee_p99_ms: p99_ms(&level.latencies_ns),
        dominant_wait,
        in_flight_utilization: if max_in_flight == 0 {
            0.0
        } else {
            level.snapshot.in_flight_highwater as f64 / max_in_flight as f64
        },
    })
}

/// One full load run: every level plus the knobs that produced it.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// "poisson" or "burst".
    pub arrival: String,
    /// "sim" or "tcp".
    pub mode: String,
    /// Root seed.
    pub seed: u64,
    /// Mean service time (sim mode; 0 for tcp).
    pub service_ns: u64,
    /// In-flight budget the controller enforced.
    pub max_in_flight: u64,
    /// Wait-queue capacity.
    pub queue_capacity: u64,
    /// Per-level measurements, in sweep order.
    pub levels: Vec<LoadLevel>,
    /// Admin-endpoint scrape results (TCP mode with an admin port;
    /// `None` in sim mode, keeping sim reports byte-identical).
    pub server: Option<ServerScrape>,
    /// Saturation analysis over the sweep (`None` only for an empty
    /// sweep).
    pub saturation: Option<SaturationReport>,
}

fn latency_block(latencies_ns: &[u64]) -> Json {
    let sorted: Vec<Duration> = latencies_ns
        .iter()
        .map(|&n| Duration::from_nanos(n))
        .collect();
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let mean = if sorted.is_empty() {
        Duration::ZERO
    } else {
        sorted.iter().sum::<Duration>() / sorted.len() as u32
    };
    Json::obj()
        .with("count", sorted.len() as u64)
        .with("mean", ms(mean))
        .with("p50", ms(percentile(&sorted, 0.50)))
        .with("p99", ms(percentile(&sorted, 0.99)))
        .with("p999", ms(percentile(&sorted, 0.999)))
}

impl LoadLevel {
    /// Serializes the level.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("offered_qps", self.offered_qps)
            .with("offered", self.offered)
            .with("accepted", self.snapshot.accepted)
            .with("queued", self.snapshot.queued)
            .with("shed", self.snapshot.shed)
            .with("abandoned", self.snapshot.abandoned)
            .with("completed", self.snapshot.completed)
            .with("queue_depth_highwater", self.snapshot.queue_depth_highwater)
            .with("in_flight_highwater", self.snapshot.in_flight_highwater)
            .with("latency_ms", latency_block(&self.latencies_ns))
            .with(
                "queue_depth",
                Json::Arr(
                    self.queue_depth
                        .iter()
                        .map(|&(t, d)| Json::obj().with("ns", t).with("depth", d))
                        .collect(),
                ),
            )
    }
}

impl LoadReport {
    /// Serializes the run (the report's `"load"` block).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .with("arrival", self.arrival.as_str())
            .with("mode", self.mode.as_str())
            .with("seed", self.seed)
            .with("service_ns", self.service_ns)
            .with("max_in_flight", self.max_in_flight)
            .with("queue_capacity", self.queue_capacity);
        if let Some(server) = &self.server {
            obj = obj.with("server", server.to_json());
        }
        if let Some(saturation) = &self.saturation {
            obj = obj.with("saturation", saturation.to_json());
        }
        obj.with(
            "levels",
            Json::Arr(self.levels.iter().map(LoadLevel::to_json).collect()),
        )
    }
}

/// Seeded service time: mean `base_ns`, uniform in `[0.5, 1.5) × base`.
fn service_time(base_ns: u64, rng: &mut SplitMix64) -> u64 {
    let jitter = 0.5 + rng.next_f64();
    ((base_ns as f64 * jitter) as u64).max(1)
}

/// Simulates one offered-QPS level against a real admission
/// controller on a virtual timeline. Deterministic in `(cfg, qps,
/// level_seed)`.
fn run_level_sim(cfg: &LoadConfig, qps: f64, level_seed: u64) -> LoadLevel {
    let n = cfg.queries_per_level;
    let ctrl = AdmissionController::new(cfg.admission, sparta_obs::ServerMetrics::new());
    let arrivals = cfg.process(qps).schedule(n, level_seed);
    let mut service_rng = SplitMix64::new(level_seed ^ 0x5EE6_F00D);
    let service: Vec<u64> = (0..n)
        .map(|_| service_time(cfg.service_ns, &mut service_rng))
        .collect();

    // Virtual-time event loop. Completions sort by (time, index) via
    // `Reverse` in a max-heap, so ties resolve deterministically; a
    // completion at time t is processed before an arrival at t (slots
    // free up first, which is what a real scheduler's release→accept
    // ordering does).
    let mut completions: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut permits: Vec<Option<Permit>> = (0..n).map(|_| None).collect();
    let mut waiting: VecDeque<(usize, QueueSlot)> = VecDeque::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut depth_series: Vec<(u64, u64)> = Vec::new();
    let mut last_depth = u64::MAX;

    let record_depth =
        |t: u64, ctrl: &Arc<AdmissionController>, series: &mut Vec<(u64, u64)>, last: &mut u64| {
            let d = ctrl.queue_depth() as u64;
            if d != *last {
                series.push((t, d));
                *last = d;
            }
        };

    let mut next = 0usize;
    while next < n || !completions.is_empty() {
        let arrival_next = arrivals.get(next).copied();
        let completion_next = completions.peek().map(|r| r.0 .0);
        let take_completion = match (arrival_next, completion_next) {
            (Some(a), Some(c)) => c <= a,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (None, None) => unreachable!("loop condition"),
        };
        if take_completion {
            let std::cmp::Reverse((t, idx)) = completions.pop().expect("peeked");
            permits[idx] = None; // drop → release slot, grant queue head
            latencies.push(t - arrivals[idx]);
            // Exactly one grant can have happened; the FIFO head is
            // the grantee if anyone was waiting.
            if let Some((widx, slot)) = waiting.pop_front() {
                match slot.try_claim() {
                    Ok(p) => {
                        permits[widx] = Some(p);
                        completions.push(std::cmp::Reverse((t + service[widx], widx)));
                    }
                    Err(slot) => waiting.push_front((widx, slot)),
                }
            }
            record_depth(t, &ctrl, &mut depth_series, &mut last_depth);
        } else {
            let t = arrival_next.expect("take_completion is false");
            match ctrl.try_admit() {
                TryAdmit::Admitted(p) => {
                    permits[next] = Some(p);
                    completions.push(std::cmp::Reverse((t + service[next], next)));
                }
                TryAdmit::Queued(slot) => waiting.push_back((next, slot)),
                TryAdmit::Shed => {}
            }
            record_depth(t, &ctrl, &mut depth_series, &mut last_depth);
            next += 1;
        }
    }
    assert!(waiting.is_empty(), "every queued query must drain");
    latencies.sort_unstable();
    let snapshot = ctrl.metrics().snapshot();

    LoadLevel {
        offered_qps: qps,
        offered: n as u64,
        snapshot,
        latencies_ns: latencies,
        queue_depth: depth_series,
    }
}

/// Runs the full simulated sweep.
pub fn run_load_sim(cfg: &LoadConfig) -> LoadReport {
    let levels: Vec<LoadLevel> = cfg
        .qps_levels
        .iter()
        .enumerate()
        .map(|(i, &qps)| run_level_sim(cfg, qps, cfg.seed.wrapping_add(i as u64)))
        .collect();
    let saturation = analyze_saturation(
        &levels,
        cfg.admission.max_in_flight as u64,
        cfg.service_ns,
        cfg.latency_budget_ms,
        None,
    );
    LoadReport {
        arrival: cfg.process(1.0).label().to_string(),
        mode: "sim".to_string(),
        seed: cfg.seed,
        service_ns: cfg.service_ns,
        max_in_flight: cfg.admission.max_in_flight as u64,
        queue_capacity: cfg.admission.queue_capacity as u64,
        levels,
        server: None,
        saturation,
    }
}

/// The stage labels [`scrape_admin`] extracts, in exposition order.
const SCRAPE_STAGES: [&str; 4] = ["admission_wait", "queue_wait", "execute", "response_write"];

/// One `/metrics` scrape, decoded: the admission snapshot, the stage
/// totals, and every sample (for the monotonicity cross-check).
fn scrape_admin(
    admin: std::net::SocketAddr,
) -> Option<(ServerSnapshot, Vec<StageStat>, Vec<(String, f64)>)> {
    let (status, body) = sparta_server::http_get(admin, "/metrics").ok()?;
    if status != 200 {
        return None;
    }
    let samples = sparta_obs::parse_exposition(&body).ok()?;
    let get = |series: &str| sparta_obs::sample_value(&samples, series).unwrap_or(0.0) as u64;
    let snapshot = ServerSnapshot {
        accepted: get("sparta_server_admission_accepted_total"),
        queued: get("sparta_server_admission_queued_total"),
        shed: get("sparta_server_admission_shed_total"),
        abandoned: get("sparta_server_admission_abandoned_total"),
        completed: get("sparta_server_completed_total"),
        queue_depth_highwater: get("sparta_server_queue_depth_highwater"),
        in_flight_highwater: get("sparta_server_in_flight_highwater"),
    };
    let mut stages: Vec<StageStat> = SCRAPE_STAGES
        .iter()
        .map(|stage| StageStat {
            stage: (*stage).to_string(),
            count: get(&format!(
                "sparta_server_stage_duration_nanoseconds_count{{stage=\"{stage}\"}}"
            )),
            sum_ns: get(&format!(
                "sparta_server_stage_duration_nanoseconds_sum{{stage=\"{stage}\"}}"
            )),
        })
        .collect();
    stages.push(StageStat {
        stage: "end_to_end".to_string(),
        count: get("sparta_server_e2e_duration_nanoseconds_count"),
        sum_ns: get("sparta_server_e2e_duration_nanoseconds_sum"),
    });
    Some((snapshot, stages, samples))
}

/// Whether a series is monotone by construction (counters, histogram
/// sums/counts, cumulative buckets) and thus must never decrease
/// between scrapes of the same live server.
fn is_monotone_series(series: &str) -> bool {
    let name = series.split('{').next().unwrap_or(series);
    ["_total", "_sum", "_count", "_bucket"]
        .iter()
        .any(|suffix| name.ends_with(suffix))
}

/// Scrapes the admin endpoint at sweep boundaries and cross-checks
/// monotonicity between consecutive scrapes.
struct ScrapeState {
    admin: std::net::SocketAddr,
    scrapes: u64,
    monotone: bool,
    prev: Vec<(String, f64)>,
    last: Option<(ServerSnapshot, Vec<StageStat>)>,
}

impl ScrapeState {
    fn new(admin: std::net::SocketAddr) -> Self {
        Self {
            admin,
            scrapes: 0,
            monotone: true,
            prev: Vec::new(),
            last: None,
        }
    }

    fn scrape(&mut self) {
        let Some((snapshot, stages, samples)) = scrape_admin(self.admin) else {
            // A failed scrape breaks the evidence chain; report it.
            self.monotone = false;
            return;
        };
        self.scrapes += 1;
        for (series, value) in &samples {
            if !is_monotone_series(series) {
                continue;
            }
            if let Some(prev) = sparta_obs::sample_value(&self.prev, series) {
                if *value < prev {
                    self.monotone = false;
                }
            }
        }
        self.prev = samples;
        self.last = Some((snapshot, stages));
    }

    fn finish(self) -> Option<ServerScrape> {
        let (snapshot, stages) = self.last?;
        Some(ServerScrape {
            scrapes: self.scrapes,
            monotone: self.monotone,
            snapshot,
            stages,
        })
    }
}

/// Counter deltas between two snapshots (highwaters carry over as the
/// later absolute value — they cannot be meaningfully diffed).
fn snapshot_delta(before: &ServerSnapshot, after: &ServerSnapshot) -> ServerSnapshot {
    ServerSnapshot {
        accepted: after.accepted - before.accepted,
        queued: after.queued - before.queued,
        shed: after.shed - before.shed,
        abandoned: after.abandoned - before.abandoned,
        completed: after.completed - before.completed,
        queue_depth_highwater: after.queue_depth_highwater,
        in_flight_highwater: after.in_flight_highwater,
    }
}

/// Drives one level against a live server over TCP: one connection per
/// query, paced open-loop by the arrival schedule, wall-clock
/// latencies.
fn run_level_tcp(
    addr: std::net::SocketAddr,
    metrics: &Arc<sparta_obs::ServerMetrics>,
    cfg: &LoadConfig,
    qps: f64,
    level_seed: u64,
    requests: &[QueryRequest],
) -> LoadLevel {
    let n = cfg.queries_per_level;
    let arrivals = cfg.process(qps).schedule(n, level_seed);
    let before = metrics.snapshot();
    let start = std::time::Instant::now();
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let offset = Duration::from_nanos(arrivals[i]);
            let req = requests[i % requests.len()].clone();
            std::thread::spawn(move || {
                let mut client = sparta_server::Client::connect(addr).ok()?;
                let now = start.elapsed();
                if offset > now {
                    std::thread::sleep(offset - now);
                }
                let sent = std::time::Instant::now();
                match client.query(&req) {
                    Ok(Frame::Response { .. }) => Some(sent.elapsed().as_nanos() as u64),
                    _ => None,
                }
            })
        })
        .collect();
    let mut latencies: Vec<u64> = handles
        .into_iter()
        .filter_map(|h| h.join().ok().flatten())
        .collect();
    latencies.sort_unstable();
    LoadLevel {
        offered_qps: qps,
        offered: n as u64,
        snapshot: snapshot_delta(&before, &metrics.snapshot()),
        latencies_ns: latencies,
        // The TCP path has no virtual timeline to sample on; the
        // high-water gauge in the snapshot carries the depth story.
        queue_depth: Vec::new(),
    }
}

/// Runs the full sweep against a live server at `addr`. When `admin`
/// is given, the server's `/metrics` endpoint is scraped before the
/// sweep and after every level; the final scrape (plus a sweep-wide
/// monotonicity verdict) lands in [`LoadReport::server`].
pub fn run_load_tcp(
    addr: std::net::SocketAddr,
    metrics: &Arc<sparta_obs::ServerMetrics>,
    cfg: &LoadConfig,
    requests: &[QueryRequest],
    admin: Option<std::net::SocketAddr>,
) -> LoadReport {
    assert!(!requests.is_empty(), "need at least one request template");
    let mut scraper = admin.map(ScrapeState::new);
    if let Some(s) = &mut scraper {
        s.scrape();
    }
    let mut levels = Vec::with_capacity(cfg.qps_levels.len());
    for (i, &qps) in cfg.qps_levels.iter().enumerate() {
        levels.push(run_level_tcp(
            addr,
            metrics,
            cfg,
            qps,
            cfg.seed.wrapping_add(i as u64),
            requests,
        ));
        if let Some(s) = &mut scraper {
            s.scrape();
        }
    }
    let server = scraper.and_then(ScrapeState::finish);
    let saturation = analyze_saturation(
        &levels,
        cfg.admission.max_in_flight as u64,
        0,
        cfg.latency_budget_ms,
        server.as_ref(),
    );
    LoadReport {
        arrival: cfg.process(1.0).label().to_string(),
        mode: "tcp".to_string(),
        seed: cfg.seed,
        service_ns: 0,
        max_in_flight: cfg.admission.max_in_flight as u64,
        queue_capacity: cfg.admission.queue_capacity as u64,
        levels,
        server,
        saturation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_accounting_is_exact_per_level() {
        let cfg = LoadConfig::default();
        let report = run_load_sim(&cfg);
        assert_eq!(report.levels.len(), 3);
        for level in &report.levels {
            let s = &level.snapshot;
            assert_eq!(s.attempts(), level.offered, "every arrival accounted");
            assert_eq!(s.accepted, s.completed, "accepted queries all complete");
            assert_eq!(s.abandoned, 0, "sim never abandons");
            assert_eq!(
                level.latencies_ns.len() as u64,
                s.completed,
                "one latency per completion"
            );
        }
        // The overloaded level must actually shed.
        assert!(
            report.levels.last().unwrap().snapshot.shed > 0,
            "5000 qps against 2000 qps capacity must shed"
        );
        // The underloaded level should not.
        assert_eq!(report.levels[0].snapshot.shed, 0);
    }

    #[test]
    fn sim_is_deterministic() {
        let cfg = LoadConfig::default();
        let a = run_load_sim(&cfg);
        let b = run_load_sim(&cfg);
        let aj = a.to_json().to_pretty_string(2);
        let bj = b.to_json().to_pretty_string(2);
        assert_eq!(aj, bj, "same seed must replay byte-identically");
        let mut cfg2 = LoadConfig::default();
        cfg2.seed ^= 1;
        let c = run_load_sim(&cfg2);
        assert_ne!(
            aj,
            c.to_json().to_pretty_string(2),
            "different seed must actually change the run"
        );
    }

    #[test]
    fn saturation_finds_knee_and_wait_class_in_default_sweep() {
        let report = run_load_sim(&LoadConfig::default());
        let sat = report.saturation.expect("non-empty sweep");
        assert!(
            sat.knee_detected,
            "5000 qps against 2000 qps capacity must cross the {} ms p99 budget (saw {:.3} ms)",
            sat.latency_budget_ms, sat.knee_p99_ms
        );
        assert!(
            sat.knee_qps > 200.0,
            "the underloaded level must stay inside the budget"
        );
        assert!(sat.knee_p99_ms > sat.latency_budget_ms);
        assert_eq!(
            sat.dominant_wait, "queue_wait",
            "an overloaded sim knee is queueing, not service time"
        );
        assert!(sat.in_flight_utilization > 0.99, "knee saturates the pool");

        // An unreachable budget pushes the knee beyond the sweep: the
        // analysis reports the last level, undetected.
        let cfg = LoadConfig {
            latency_budget_ms: 1e9,
            ..LoadConfig::default()
        };
        let sat = run_load_sim(&cfg).saturation.expect("non-empty sweep");
        assert!(!sat.knee_detected);
        assert_eq!(sat.knee_qps, 5000.0);
    }

    #[test]
    fn burst_arrivals_queue_deeper_than_poisson() {
        let mut poisson = LoadConfig::default();
        poisson.qps_levels = vec![1000.0];
        let mut burst = poisson.clone();
        burst.burst_size = Some(20);
        let p = run_load_sim(&poisson).levels.remove(0);
        let b = run_load_sim(&burst).levels.remove(0);
        assert!(
            b.snapshot.queue_depth_highwater >= p.snapshot.queue_depth_highwater,
            "bursts at the same average rate must not queue shallower (burst {} vs poisson {})",
            b.snapshot.queue_depth_highwater,
            p.snapshot.queue_depth_highwater
        );
    }
}
