//! Properties of the seeded arrival processes: exact event counts,
//! statistically correct rates, and byte-identical replay — the load
//! harness's reproducibility claim rests on these.

use sparta_bench::ArrivalProcess;
use sparta_testkit::base_seed;

fn processes() -> Vec<ArrivalProcess> {
    vec![
        ArrivalProcess::Poisson { qps: 100.0 },
        ArrivalProcess::Poisson { qps: 5_000.0 },
        ArrivalProcess::Burst {
            qps: 1_000.0,
            burst_size: 8,
        },
        ArrivalProcess::Burst {
            qps: 250.0,
            burst_size: 32,
        },
    ]
}

#[test]
fn schedules_have_exact_count_and_are_sorted() {
    for p in processes() {
        for i in 0..40u64 {
            let seed = base_seed().wrapping_add(i);
            for n in [0usize, 1, 7, 100] {
                let s = p.schedule(n, seed);
                assert_eq!(s.len(), n, "{p:?} seed {seed}: wrong event count");
                assert!(
                    s.windows(2).all(|w| w[0] <= w[1]),
                    "{p:?} seed {seed}: schedule not sorted"
                );
            }
        }
    }
}

#[test]
fn same_seed_replays_byte_identically() {
    for p in processes() {
        let seed = base_seed();
        let a = p.schedule(5_000, seed);
        let b = p.schedule(5_000, seed);
        assert_eq!(a, b, "{p:?}: same seed must replay identically");
        // And the bytes, not just the values, for the emitted-JSON
        // byte-identity claim.
        let bytes_a: Vec<u8> = a.iter().flat_map(|t| t.to_le_bytes()).collect();
        let bytes_b: Vec<u8> = b.iter().flat_map(|t| t.to_le_bytes()).collect();
        assert_eq!(bytes_a, bytes_b);
        let c = p.schedule(5_000, seed.wrapping_add(1));
        assert_ne!(a, c, "{p:?}: a different seed must change the schedule");
    }
}

#[test]
fn poisson_mean_interarrival_matches_rate() {
    // Law of large numbers at n = 50 000: the sample mean gap must sit
    // within 3% of 1/qps (σ/√n ≈ 0.45% of the mean here).
    for qps in [200.0f64, 1_000.0, 10_000.0] {
        let p = ArrivalProcess::Poisson { qps };
        let n = 50_000;
        let s = p.schedule(n, base_seed());
        let span_ns = s[n - 1] - s[0];
        let mean_gap = span_ns as f64 / (n - 1) as f64;
        let expected = 1e9 / qps;
        let err = (mean_gap - expected).abs() / expected;
        assert!(
            err < 0.03,
            "qps {qps}: mean gap {mean_gap:.1} ns vs expected {expected:.1} ns (err {err:.4})"
        );
    }
}

#[test]
fn burst_long_run_rate_matches_qps() {
    let qps = 1_000.0;
    let burst_size = 10;
    let p = ArrivalProcess::Burst { qps, burst_size };
    let n = 10_000;
    let s = p.schedule(n, base_seed());
    // n/burst_size bursts spaced burst_size/qps apart: the whole run
    // spans ≈ n/qps seconds, so the realized average rate is qps.
    let span_s = (s[n - 1] - s[0]) as f64 / 1e9;
    let rate = (n - 1) as f64 / span_s;
    let err = (rate - qps).abs() / qps;
    assert!(
        err < 0.05,
        "burst rate {rate:.1} qps vs offered {qps} (err {err:.4})"
    );
}

#[test]
fn poisson_gaps_are_actually_dispersed() {
    // Exponential gaps have coefficient of variation 1; a generator
    // accidentally emitting constant gaps (CV ≈ 0) would pass the mean
    // test but hide all queueing behaviour.
    let p = ArrivalProcess::Poisson { qps: 1_000.0 };
    let s = p.schedule(20_000, base_seed());
    let gaps: Vec<f64> = s.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
    let cv = var.sqrt() / mean;
    assert!(
        (cv - 1.0).abs() < 0.1,
        "coefficient of variation {cv:.3}, expected ≈ 1 for exponential gaps"
    );
}
