//! End-to-end check of the `BENCH_*.json` emitter on a tiny dataset:
//! builds a real report (real index, real searches, instrumented
//! executors), serializes it, and asserts the schema contract the CI
//! smoke job relies on.

use sparta_bench::export::build_report;
use sparta_bench::{validate_bench_json, Dataset, Scale, VariantParams};
use sparta_obs::json;

#[test]
fn emitted_report_parses_with_expected_keys() {
    // This integration test owns its process, so scaling the corpus
    // via the environment cannot race other tests.
    std::env::set_var("SPARTA_DOCS", "1500");
    std::env::set_var("SPARTA_K", "10");
    let ds = Dataset::build(Scale::Cw);
    let report = build_report(
        &ds,
        "unit",
        &["sparta", "pbmw"],
        &[VariantParams::exact()],
        &[1, 2],
        2,
        3,
    );
    assert_eq!(
        report.cells.len(),
        4,
        "2 algorithms × 1 variant × 2 thread counts"
    );
    assert_eq!(report.recall_curves.len(), 2);

    let text = report.to_json().to_pretty_string(2);
    validate_bench_json(&text).expect("schema validates");

    let doc = json::parse(&text).expect("emitted JSON parses");
    assert_eq!(doc.get("name").unwrap().as_str(), Some("unit"));
    assert_eq!(doc.get("docs").unwrap().as_f64(), Some(1500.0));
    assert_eq!(doc.get("k").unwrap().as_f64(), Some(10.0));

    let cells = doc.get("cells").unwrap().as_arr().unwrap();
    for cell in cells {
        // Exact runs on this corpus must report perfect recall and a
        // live executor: jobs were actually run and timed.
        assert_eq!(cell.get("mean_recall").unwrap().as_f64(), Some(1.0));
        let exec = cell.get("exec").unwrap();
        assert!(exec.get("jobs_run").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(exec.get("jobs_panicked").unwrap().as_f64(), Some(0.0));
        assert_eq!(exec.get("queries_run").unwrap().as_f64(), Some(2.0));
        let job_ns = exec.get("job_ns").unwrap();
        assert_eq!(
            job_ns.get("count").unwrap().as_f64(),
            exec.get("jobs_run").unwrap().as_f64()
        );
        let idle = exec.get("idle_ratio").unwrap().as_f64().unwrap();
        assert!(
            (0.0..=1.0).contains(&idle),
            "idle_ratio {idle} out of range"
        );
        let work = cell.get("work").unwrap();
        assert!(work.get("postings_scanned").unwrap().as_f64().unwrap() > 0.0);
        // The recycle counter is emitted for every cell (it is only
        // guaranteed nonzero when lists span multiple segments, which
        // this tiny corpus need not — tests/slab_accounting.rs pins
        // the nonzero case).
        assert!(work.get("jobs_recycled").unwrap().as_f64().unwrap() >= 0.0);
    }

    for curve in doc.get("recall_curves").unwrap().as_arr().unwrap() {
        let points = curve.get("points").unwrap().as_arr().unwrap();
        assert!(!points.is_empty(), "traced run produced no samples");
        let final_recall = points
            .last()
            .unwrap()
            .get("recall")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(final_recall, 1.0, "exact traced run ends at full recall");
    }
}
