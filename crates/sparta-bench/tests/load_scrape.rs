//! The TCP load harness's admin scraping: a sweep against a live
//! server with an admin port must come back with server-side truth —
//! a successful scrape per sweep boundary, monotone counters, and
//! stage totals that agree with the client-side view.

use sparta_bench::{run_load_tcp, LoadConfig};
use sparta_core::SearchConfig;
use sparta_obs::ServerMetrics;
use sparta_server::admission::AdmissionConfig;
use sparta_server::protocol::QueryRequest;
use sparta_server::scheduler::BatchScheduler;
use sparta_server::serve_with_admin;
use sparta_testkit::{base_seed, build_index};
use std::sync::Arc;

#[test]
fn tcp_sweep_scrapes_server_truth() {
    let (index, _corpus) = build_index(base_seed());
    let admission = AdmissionConfig::new(4, 16);
    let scheduler = BatchScheduler::new(
        Arc::clone(&index),
        SearchConfig::exact(10),
        2,
        admission,
        ServerMetrics::new(),
    );
    let handle = serve_with_admin("127.0.0.1:0", "127.0.0.1:0", scheduler).expect("bind loopback");
    let mut cfg = LoadConfig::default();
    cfg.qps_levels = vec![200.0, 500.0];
    cfg.queries_per_level = 20;
    cfg.admission = admission;
    let requests = vec![QueryRequest {
        k: 5,
        algorithm: "sparta".to_string(),
        terms: vec![1, 2, 3],
    }];
    let report = run_load_tcp(
        handle.addr(),
        handle.metrics(),
        &cfg,
        &requests,
        handle.admin_addr(),
    );
    handle.shutdown();

    let scrape = report.server.as_ref().expect("admin scrape present");
    // One scrape before the sweep plus one per level.
    assert_eq!(scrape.scrapes, 3, "every boundary scrape must succeed");
    assert!(scrape.monotone, "live counters must be monotone");
    // Server-side counters cover the whole sweep: 40 offered total.
    assert_eq!(
        scrape.snapshot.attempts(),
        40,
        "server saw every query: {:?}",
        scrape.snapshot
    );
    // Five stage entries (4 stages + end_to_end), each with the same
    // count as completed queries.
    assert_eq!(scrape.stages.len(), 5);
    for stage in &scrape.stages {
        assert_eq!(
            stage.count, scrape.snapshot.completed,
            "stage {} count out of lockstep",
            stage.stage
        );
    }
    let e2e = scrape
        .stages
        .iter()
        .find(|s| s.stage == "end_to_end")
        .expect("end_to_end stage");
    let parts: u64 = scrape
        .stages
        .iter()
        .filter(|s| s.stage != "end_to_end")
        .map(|s| s.sum_ns)
        .sum();
    assert!(
        parts <= e2e.sum_ns,
        "stage sums ({parts}) must bound end-to-end ({})",
        e2e.sum_ns
    );
    // The JSON emission carries the block and validates.
    let json = report.to_json().to_pretty_string(2);
    assert!(json.contains("\"server\""), "server block emitted:\n{json}");
}
