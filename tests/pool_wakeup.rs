//! Worker-pool park/retire interleavings and the wakeup protocol.
//!
//! History: the original `JobQueue::finish_one` decremented the
//! outstanding counter and notified the completion condvar *without*
//! touching the queue mutex. A notify landing between a waiter's
//! counter check and its park was silently lost — the classic lost
//! wakeup — wedging `wait_done` forever. The shipped fix is the *lock
//! bridge*: after the final decrement, `finish_one` acquires and
//! immediately drops the queue mutex before notifying, which
//! serializes the notify against the waiter's check-then-park window
//! (the waiter holds that mutex continuously until the condvar's
//! atomic release-and-park).
//!
//! Coverage here is three-layered:
//!
//! 1. [`wakeup_model`] *exhaustively enumerates* every interleaving of
//!    one waiter and one finisher under both protocols: the legacy
//!    protocol provably loses wakeups, the lock bridge never does.
//! 2. [`sweep_pool_schedules`] churns real `WorkerPool`s (1–4 workers,
//!    seed-derived) through construction, query execution, burst
//!    submission, and the retire/join shutdown handshake — the
//!    sleep-→-retire window a model cannot exercise.
//! 3. A sleep/retire race loop drops pools immediately after their
//!    last completion, racing worker parking against shutdown notify.

use sparta::prelude::*;
use sparta_exec::JobQueue;
use sparta_testkit::wakeup_model::{explore, lost_wakeup_interleavings, Protocol};
use sparta_testkit::{build_index, long_query, sweep_pool_schedules};
use std::sync::Arc;

#[test]
fn wakeup_model_proves_the_lock_bridge() {
    let legacy = explore(Protocol::Legacy);
    assert!(
        legacy.lost_wakeups >= 1,
        "legacy protocol must exhibit the lost wakeup: {legacy:?}"
    );
    let bridge = explore(Protocol::LockBridge);
    assert_eq!(
        bridge.lost_wakeups, 0,
        "lock-bridge protocol must never lose a wakeup: {bridge:?}"
    );
    assert!(bridge.interleavings > 0);
    assert_eq!(lost_wakeup_interleavings(Protocol::LockBridge), 0);
}

#[test]
fn pool_sweep_results_match_dedicated_across_worker_counts() {
    let (ix, corpus) = build_index(41);
    let q = long_query(&corpus, 9);
    let cfg = SearchConfig::exact(10).with_seg_size(64).with_phi(256);
    let want = Sparta
        .search(&ix, &q, &cfg, &DedicatedExecutor::new(1))
        .scores();
    sweep_pool_schedules(6, |seed, pool| {
        let got = Sparta.search(&ix, &q, &cfg, pool).scores();
        assert_eq!(got, want, "pool schedule seed {seed} diverged");
    });
}

#[test]
fn burst_submission_completes_under_every_pool_schedule() {
    // Bursts of trivial jobs maximize pressure on the push-notify vs
    // worker-park edge: with the lock bridge every wait_done returns.
    sweep_pool_schedules(12, |seed, pool| {
        for j in 0..3u64 {
            let q = JobQueue::new();
            let jobs = 1 + ((seed ^ j) % 4);
            for _ in 0..jobs {
                q.push(Box::new(|| {}));
            }
            pool.run(Arc::clone(&q));
            assert!(q.is_complete(), "seed {seed} burst {j} did not complete");
            assert_eq!(q.executed(), jobs as usize);
        }
    });
}

#[test]
fn sleep_retire_race_pool_dropped_right_after_completion() {
    // The sweep drops the pool at the end of each seed iteration, so
    // finishing the check with a just-completed queue races the
    // workers' descent into their parked sleep against the shutdown
    // flag + notify of the retire handshake. A lost shutdown wakeup
    // would hang the drop (and the test) here.
    sweep_pool_schedules(16, |_seed, pool| {
        let q = JobQueue::new();
        q.push(Box::new(|| {}));
        pool.run(Arc::clone(&q));
        assert!(q.is_complete());
    });
}
