//! Observability determinism and concurrency tests.
//!
//! The acceptance bar for the tracing layer: under the deterministic
//! executor with a logical-step clock, replaying the same schedule
//! seed yields *bit-identical* span vectors and heap traces — no
//! wall-clock jitter leaks into the record. The metric primitives must
//! likewise count exactly under every explored schedule and under real
//! thread-level concurrency.

use sparta_core::config::SearchConfig;
use sparta_core::{algorithm_by_name, TopKResult};
use sparta_exec::{DedicatedExecutor, DeterministicExecutor, Executor, JobQueue};
use sparta_obs::{phase_totals, ClockMode, Histogram, Phase};
use sparta_testkit::{base_seed, build_index, long_query, sweep_schedules};
use std::sync::Arc;

/// Algorithms with phase-span instrumentation.
const TRACED_ALGOS: [&str; 5] = ["sparta", "pnra", "snra", "pjass", "pbmw"];

fn run_traced(name: &str, seed: u64) -> TopKResult {
    let (ix, corpus) = build_index(7);
    let q = long_query(&corpus, 11);
    let cfg = SearchConfig::exact(10)
        .with_spans(true)
        .with_clock(ClockMode::Logical)
        .with_trace(true);
    let exec = DeterministicExecutor::new(seed);
    algorithm_by_name(name)
        .unwrap_or_else(|| panic!("unknown algorithm {name}"))
        .search(&ix, &q, &cfg, &exec)
}

#[test]
fn traces_bit_identical_across_replays_of_same_seed() {
    for name in TRACED_ALGOS {
        let a = run_traced(name, base_seed());
        let b = run_traced(name, base_seed());
        let spans_a = a.spans.as_deref().expect("spans enabled");
        let spans_b = b.spans.as_deref().expect("spans enabled");
        assert!(!spans_a.is_empty(), "{name}: no spans recorded");
        assert_eq!(spans_a, spans_b, "{name}: span replay diverged");
        assert_eq!(a.trace, b.trace, "{name}: heap-trace replay diverged");
        assert_eq!(a.docs(), b.docs(), "{name}: results diverged");
    }
}

#[test]
fn replay_determinism_holds_across_schedules() {
    sweep_schedules(4, |seed, _| {
        let a = run_traced("sparta", seed);
        let b = run_traced("sparta", seed);
        assert_eq!(a.spans, b.spans, "seed {seed}: spans diverged");
        assert_eq!(a.trace, b.trace, "seed {seed}: trace diverged");
    });
}

#[test]
fn logical_spans_are_well_formed_and_cover_phases() {
    let r = run_traced("sparta", base_seed());
    let spans = r.spans.unwrap();
    // Logical ticks are unique per trace, so sorted spans strictly
    // advance and every span closes after it opens.
    for w in spans.windows(2) {
        assert!(w[0].start < w[1].start, "logical ticks not unique");
    }
    for s in &spans {
        assert!(s.end > s.start, "span {s:?} closed before opening");
    }
    let phases: Vec<Phase> = phase_totals(&spans).iter().map(|t| t.phase).collect();
    for expected in [Phase::Plan, Phase::TermProcess, Phase::HeapMerge] {
        assert!(phases.contains(&expected), "missing phase {expected:?}");
    }
}

#[test]
fn histogram_counts_exactly_under_every_schedule() {
    sweep_schedules(8, |seed, exec| {
        let hist = Arc::new(Histogram::new());
        let queue = JobQueue::new();
        let jobs = 16u64;
        let per_job = 8u64;
        for j in 0..jobs {
            let hist = Arc::clone(&hist);
            queue.push(Box::new(move || {
                for v in 0..per_job {
                    hist.record(j * per_job + v);
                }
            }));
        }
        exec.run(queue);
        let s = hist.snapshot();
        assert_eq!(s.count, jobs * per_job, "seed {seed}: lost observations");
        let n = jobs * per_job;
        assert_eq!(s.sum, n * (n - 1) / 2, "seed {seed}: sum drifted");
        // Percentiles stay monotone no matter the recording order.
        let (p50, p90, p99) = (s.percentile(0.5), s.percentile(0.9), s.percentile(0.99));
        assert!(
            p50 <= p90 && p90 <= p99,
            "seed {seed}: non-monotone percentiles"
        );
    });
}

#[test]
fn histogram_counts_exactly_under_thread_concurrency() {
    let hist = Arc::new(Histogram::new());
    let queue = JobQueue::new();
    let jobs = 32u64;
    let per_job = 1000u64;
    for _ in 0..jobs {
        let hist = Arc::clone(&hist);
        queue.push(Box::new(move || {
            for v in 1..=per_job {
                hist.record(v);
            }
        }));
    }
    DedicatedExecutor::new(4).run(queue);
    let s = hist.snapshot();
    assert_eq!(s.count, jobs * per_job);
    assert_eq!(s.sum, jobs * per_job * (per_job + 1) / 2);
}
