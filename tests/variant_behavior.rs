//! Behavioral contracts of the approximation knobs across the whole
//! algorithm suite: each knob must trade work for recall in the
//! documented direction, and the exact settings must be safe.

use sparta::prelude::*;
use sparta_testkit::{build_index as build, long_query};
use std::time::Duration;

#[test]
fn bmw_f_monotonically_prunes() {
    let (ix, corpus) = build(41);
    let q = long_query(&corpus, 1);
    let exec = DedicatedExecutor::new(1); // deterministic schedule
    let mut last = u64::MAX;
    for f in [1.0, 1.05, 1.2, 1.5, 2.0] {
        let cfg = SearchConfig::exact(25).with_bmw_f(f);
        let r = SeqBmw.search(&ix, &q, &cfg, &exec);
        assert!(
            r.work.postings_scanned <= last,
            "f={f}: scanned {} > previous {last}",
            r.work.postings_scanned
        );
        last = r.work.postings_scanned;
    }
}

#[test]
fn jass_p_budget_is_exact_for_sequential() {
    let (ix, corpus) = build(42);
    let q = long_query(&corpus, 2);
    let total: u64 = q.terms.iter().map(|&t| ix.doc_freq(t)).sum();
    let exec = DedicatedExecutor::new(1);
    for p in [0.1, 0.25, 0.5, 1.0] {
        let cfg = SearchConfig::exact(25).with_jass_p(p);
        let r = Jass.search(&ix, &q, &cfg, &exec);
        let budget = ((total as f64) * p).ceil() as u64;
        assert!(
            r.work.postings_scanned <= budget,
            "p={p}: scanned {} over budget {budget}",
            r.work.postings_scanned
        );
        if p >= 1.0 {
            assert_eq!(r.work.postings_scanned, total, "p=1 is exhaustive");
        }
    }
}

#[test]
fn sparta_gamma_never_scans_more_than_safe() {
    let (ix, corpus) = build(43);
    let q = long_query(&corpus, 3);
    let exec = DedicatedExecutor::new(1);
    let base = SearchConfig::exact(25).with_seg_size(64).with_phi(128);
    let safe = Sparta.search(&ix, &q, &base, &exec);
    for gamma in [0.95, 0.8, 0.6] {
        let r = Sparta.search(&ix, &q, &base.with_prune_gamma(gamma), &exec);
        assert!(
            r.work.postings_scanned <= safe.work.postings_scanned,
            "γ={gamma}: {} > safe {}",
            r.work.postings_scanned,
            safe.work.postings_scanned
        );
        assert_eq!(r.hits.len(), 25, "γ={gamma} returns a full set");
    }
}

#[test]
fn delta_zero_like_timeouts_still_return_k_results() {
    // Even an absurdly tight Δ must produce a structurally valid
    // result (k hits, rank-ordered) from every Δ-capable algorithm.
    let (ix, corpus) = build(44);
    let q = long_query(&corpus, 4);
    let cfg = SearchConfig::exact(20).with_delta(Some(Duration::from_micros(1)));
    let exec = DedicatedExecutor::new(2);
    for name in ["sparta", "pra", "pnra", "snra", "nra", "ra"] {
        let algo = sparta::core::algorithm_by_name(name).unwrap();
        let r = algo.search(&ix, &q, &cfg, &exec);
        assert!(!r.hits.is_empty(), "{name} returned nothing");
        assert!(
            r.hits.windows(2).all(|w| w[0].score >= w[1].score),
            "{name} rank order broken"
        );
    }
}

#[test]
fn oracle_recall_is_bounded_and_ordered() {
    let (ix, corpus) = build(45);
    let q = long_query(&corpus, 5);
    let oracle = Oracle::compute(ix.as_ref(), &q, 30);
    // Truth itself scores 1.0; arbitrary docs are within [0, 1]; the
    // strict measure never exceeds the tie-aware one.
    let truth: Vec<DocId> = oracle.topk().iter().map(|h| h.doc).collect();
    assert_eq!(oracle.recall(&truth), 1.0);
    let junk: Vec<DocId> = (0..30).map(|i| i * 7 % 2000).collect();
    let r = oracle.recall(&junk);
    assert!((0.0..=1.0).contains(&r));
    assert!(oracle.strict_recall(&junk) <= r + 1e-12);
    assert_eq!(oracle.recall(&[]), 0.0);
}

#[test]
fn exact_variants_agree_on_true_score_multisets() {
    // The strongest cross-algorithm contract: the multiset of *true*
    // scores of the returned docs is identical for every exact
    // algorithm (doc identity may differ on score ties).
    let (ix, corpus) = build(46);
    let q = long_query(&corpus, 6);
    let k = 25;
    let oracle = Oracle::compute(ix.as_ref(), &q, k);
    let want: Vec<u64> = oracle.topk().iter().map(|h| h.score).collect();
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(3);
    for algo in sparta::core::registry::all_algorithms() {
        let r = algo.search(&ix, &q, &cfg, &exec);
        let mut got: Vec<u64> = r.docs().iter().map(|&d| oracle.score(d)).collect();
        got.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(got, want, "{} true-score multiset differs", algo.name());
    }
}
