//! Throughput-mode integration: the same algorithm code must produce
//! identical results when its jobs run on the shared FCFS worker pool
//! (§5.1's throughput evaluation mode) instead of dedicated threads,
//! including with many queries in flight concurrently.

use sparta::prelude::*;
use sparta_exec::{StallWatchdog, WatchdogConfig};
use sparta_obs::{ClockMode, FlightRecorder};
use sparta_testkit::build_index as build;
use std::sync::Arc;
use std::time::Duration;

/// A recorder-instrumented pool guarded by the stall watchdog: if any
/// throughput test wedges (no recorder events for 30s with work
/// outstanding), the watchdog dumps every worker's event ring to
/// stderr before the CI timeout kills the job — turning a silent hang
/// into a diagnosable one.
fn guarded_pool(threads: usize) -> (WorkerPool, StallWatchdog) {
    let rec = FlightRecorder::new(threads, 1 << 12, ClockMode::Wall);
    let pool = WorkerPool::with_recorder(threads, None, rec);
    let wd = pool
        .watchdog(WatchdogConfig {
            quiet: Duration::from_secs(30),
            ..WatchdogConfig::default()
        })
        .expect("pool has a recorder");
    (pool, wd)
}

#[test]
fn pool_results_match_dedicated() {
    let (ix, corpus) = build(31);
    let log = QueryLog::generate(corpus.stats(), 2, 4, 5);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    let (pool, _watchdog) = guarded_pool(3);
    let dedicated = DedicatedExecutor::new(3);
    for q in log.all() {
        for algo in sparta::core::registry::case_study_algorithms() {
            let a = algo.search(&ix, q, &cfg, &dedicated);
            let b = algo.search(&ix, q, &cfg, &pool);
            assert_eq!(
                a.scores(),
                b.scores(),
                "{} differs on the shared pool for {:?}",
                algo.name(),
                q.terms
            );
        }
    }
}

#[test]
fn concurrent_queries_share_pool_correctly() {
    let (ix, corpus) = build(32);
    let log = QueryLog::generate(corpus.stats(), 4, 3, 6);
    let cfg = SearchConfig::exact(10).with_seg_size(64);
    let (pool, _watchdog) = guarded_pool(4);
    let pool = Arc::new(pool);
    let queries: Vec<Query> = log.all().cloned().collect();
    // Expected results, computed serially.
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| {
            Sparta
                .search(&ix, q, &cfg, &DedicatedExecutor::new(1))
                .scores()
        })
        .collect();
    // Submit all queries concurrently from several driver threads.
    std::thread::scope(|s| {
        for (q, want) in queries.iter().zip(&expected) {
            let ix = Arc::clone(&ix);
            let pool = Arc::clone(&pool);
            s.spawn(move || {
                let got = Sparta.search(&ix, q, &cfg, pool.as_ref()).scores();
                assert_eq!(&got, want, "concurrent result diverged for {:?}", q.terms);
            });
        }
    });
}

#[test]
fn pool_survives_many_sequential_queries() {
    let (ix, corpus) = build(33);
    let log = QueryLog::generate(corpus.stats(), 1, 6, 7);
    let cfg = SearchConfig::exact(10);
    let (pool, _watchdog) = guarded_pool(2);
    let oracle_recall_one = |q: &Query| {
        let oracle = Oracle::compute(ix.as_ref(), q, 10);
        let r = PJass.search(&ix, q, &cfg, &pool);
        oracle.recall(&r.docs())
    };
    for m in 1..=6 {
        for q in log.of_length(m) {
            assert_eq!(oracle_recall_one(q), 1.0, "query {:?}", q.terms);
        }
    }
    assert_eq!(pool.pending_queries(), 0);
    // Completed queues are retired lazily during worker sweeps; give
    // the pool a moment to notice.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while pool.active_queries() > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert_eq!(pool.active_queries(), 0);
}
