//! Schedule-exploration tests built on the deterministic executor:
//! one seed ⇒ one exactly replayable schedule. Failures print the seed;
//! replay with `SPARTA_TEST_SEED=<n> cargo test --test deterministic_schedules`.

use sparta::prelude::*;
use sparta_testkit::{
    assert_eq2_termination, assert_exact_invariants, base_seed, build_index, long_query, queries,
    sweep_schedules,
};
use std::time::Duration;

/// Same seed ⇒ bit-identical result: identical hits *and* identical
/// work counters (wall-clock `elapsed` is excluded — it is the one
/// schedule-independent nondeterministic field).
#[test]
fn same_seed_is_bit_identical() {
    let (ix, corpus) = build_index(61);
    let q = long_query(&corpus, 1);
    let cfg = SearchConfig::exact(20).with_seg_size(64).with_phi(256);
    for offset in 0..8u64 {
        let seed = base_seed().wrapping_add(offset);
        let a = Sparta.search(&ix, &q, &cfg, &DeterministicExecutor::new(seed));
        let b = Sparta.search(&ix, &q, &cfg, &DeterministicExecutor::new(seed));
        assert_eq!(a.hits, b.hits, "seed {seed}: hits diverged");
        assert_eq!(a.work, b.work, "seed {seed}: work counters diverged");
    }
}

/// Different seeds must actually explore *different* schedules — the
/// sweep is vacuous otherwise. Hits stay identical (exactness is
/// schedule-independent); the work profile is the schedule fingerprint.
#[test]
fn seeds_explore_at_least_two_schedules_of_64() {
    let (ix, corpus) = build_index(62);
    let q = long_query(&corpus, 2);
    let cfg = SearchConfig::exact(20).with_seg_size(64).with_phi(256);
    let oracle = Oracle::compute(ix.as_ref(), &q, 20);
    let mut fingerprints = std::collections::HashSet::new();
    sweep_schedules(64, |seed, exec| {
        let r = Sparta.search(&ix, &q, &cfg, exec);
        assert_exact_invariants(&oracle, &r, &format!("sparta seed {seed}"));
        fingerprints.insert((
            r.work.postings_scanned,
            r.work.cleaner_passes,
            r.work.docmap_peak,
        ));
    });
    assert!(
        fingerprints.len() >= 2,
        "64 seeds produced {} distinct work profiles — the executor is \
         not exploring schedules",
        fingerprints.len()
    );
}

/// Regression for the termination conditions (ISSUE satellite): the
/// exact variant stops via Eq. 2 — `|docMap| == |docHeap|`, never the
/// Δ timeout — on every one of ≥32 explored schedules.
#[test]
fn exact_terminates_via_eq2_on_all_schedules() {
    let (ix, corpus) = build_index(63);
    let q = long_query(&corpus, 3);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    let oracle = Oracle::compute(ix.as_ref(), &q, 15);
    sweep_schedules(32, |seed, exec| {
        let r = Sparta.search(&ix, &q, &cfg, exec);
        let ctx = format!("sparta exact seed {seed}");
        assert_exact_invariants(&oracle, &r, &ctx);
        assert_eq2_termination(&r, &ctx);
    });
}

/// The approximate variant must respect its Δ budget on every
/// schedule: it terminates, returns a structurally valid result, and
/// any early stop is recorded as a timeout stop (never more than one —
/// `done` latches).
#[test]
fn approximate_respects_delta_on_all_schedules() {
    let (ix, corpus) = build_index(64);
    let q = long_query(&corpus, 4);
    let cfg = SearchConfig::exact(15)
        .with_seg_size(64)
        .with_phi(256)
        .with_delta(Some(Duration::from_micros(1)));
    sweep_schedules(32, |seed, exec| {
        let r = Sparta.search(&ix, &q, &cfg, exec);
        assert!(!r.hits.is_empty(), "seed {seed}: no hits under tiny Δ");
        assert!(
            r.hits.windows(2).all(|w| w[0].score >= w[1].score),
            "seed {seed}: rank order broken"
        );
        assert!(
            r.work.timeout_stops <= 1,
            "seed {seed}: done flag must latch after the first stop"
        );
    });
}

/// NRA-family partial scores stay lower bounds on every schedule, for
/// every NRA-family algorithm (not just Sparta).
#[test]
fn nra_family_lower_bounds_hold_on_all_schedules() {
    let (ix, corpus) = build_index(65);
    let q = queries(&corpus, 1, 5, 5).pop().unwrap();
    let cfg = SearchConfig::exact(10).with_seg_size(64).with_phi(128);
    let oracle = Oracle::compute(ix.as_ref(), &q, 10);
    for name in ["nra", "pnra", "snra", "sparta"] {
        let algo = sparta::core::algorithm_by_name(name).unwrap();
        sweep_schedules(16, |seed, exec| {
            let r = algo.search(&ix, &q, &cfg, exec);
            assert_eq!(
                oracle.recall(&r.docs()),
                1.0,
                "{name} seed {seed}: missed top-k"
            );
            for h in &r.hits {
                assert!(
                    h.score <= oracle.score(h.doc),
                    "{name} seed {seed}: LB {} exceeds true score {} for doc {}",
                    h.score,
                    oracle.score(h.doc),
                    h.doc
                );
            }
        });
    }
}

/// All exact algorithms agree with the oracle under explored schedules
/// (the deterministic analogue of `algorithms_agree`).
#[test]
fn all_algorithms_exact_under_explored_schedules() {
    let (ix, corpus) = build_index(66);
    let q = queries(&corpus, 1, 4, 7).pop().unwrap();
    let cfg = SearchConfig::exact(12).with_seg_size(64).with_phi(128);
    let oracle = Oracle::compute(ix.as_ref(), &q, 12);
    for algo in sparta::core::registry::all_algorithms() {
        sweep_schedules(8, |seed, exec| {
            let r = algo.search(&ix, &q, &cfg, exec);
            assert_eq!(
                oracle.recall(&r.docs()),
                1.0,
                "{} seed {seed}: missed top-k",
                algo.name()
            );
        });
    }
}
