//! Compression integration: the varint codec must round-trip every
//! posting list of a real synthetic corpus and achieve a meaningful
//! size reduction (the context for the paper's §5 decision to
//! benchmark uncompressed indexes).

use sparta::index::{compress, posting, Index, IndexBuilder, Posting};
use sparta::prelude::*;

#[test]
fn corpus_lists_round_trip_and_shrink() {
    let corpus = sparta_testkit::build_corpus(77);
    let ix = IndexBuilder::new(TfIdfScorer).build_memory(&corpus);
    let mut raw_bytes = 0usize;
    let mut compressed_bytes = 0usize;
    for t in 0..ix.num_terms() {
        let td = ix.term_data(t).unwrap();
        // Doc-ordered codec.
        let doc_list: Vec<Posting> = td.doc_order.as_ref().clone();
        let buf = compress::compress_doc_ordered(&doc_list);
        assert_eq!(
            compress::decompress_doc_ordered(&buf, doc_list.len()).unwrap(),
            doc_list,
            "term {t} doc-ordered"
        );
        // Score-ordered codec (+ streaming decoder).
        let score_list: Vec<Posting> = td.score_order.as_ref().clone();
        let sbuf = compress::compress_score_ordered(&score_list);
        let streamed: Vec<Posting> =
            compress::ScoreOrderedDecoder::new(&sbuf, score_list.len()).collect();
        assert_eq!(streamed, score_list, "term {t} score-ordered");
        raw_bytes += doc_list.len() * 8;
        compressed_bytes += buf.len();
    }
    assert!(raw_bytes > 0);
    let ratio = raw_bytes as f64 / compressed_bytes as f64;
    assert!(
        ratio > 1.3,
        "compression ratio {ratio:.2} too low ({compressed_bytes} of {raw_bytes} bytes)"
    );
}

#[test]
fn decoded_lists_preserve_order_invariants() {
    let corpus = SynthCorpus::build(CorpusModel::tiny(78));
    let ix = IndexBuilder::new(TfIdfScorer).build_memory(&corpus);
    for t in (0..ix.num_terms()).step_by(29) {
        let td = ix.term_data(t).unwrap();
        let buf = compress::compress_doc_ordered(&td.doc_order);
        let decoded = compress::decompress_doc_ordered(&buf, td.doc_order.len()).unwrap();
        assert!(posting::is_doc_ordered(&decoded));
        let sbuf = compress::compress_score_ordered(&td.score_order);
        let decoded = compress::decompress_score_ordered(&sbuf, td.score_order.len()).unwrap();
        assert!(posting::is_score_ordered(&decoded));
    }
}
