//! Property-based tests (proptest) over the core invariants:
//! * every exact algorithm retrieves the oracle top-k on *arbitrary*
//!   indexes (not just the generators' distributions);
//! * the concurrent collections behave like their sequential models;
//! * the on-disk format round-trips arbitrary posting lists.

use proptest::collection::vec;
use proptest::prelude::*;
use sparta::collections::{BoundedTopK, MutableTopK, StripedMap};
use sparta::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// An arbitrary tiny index: m lists of (doc, score) postings with
/// duplicate docs removed per list, plus a k.
fn arb_index() -> impl Strategy<Value = (Vec<Vec<sparta::index::Posting>>, usize)> {
    let list = vec((0u32..60, 1u32..1000), 0..80).prop_map(|mut ps| {
        ps.sort_by_key(|&(d, _)| d);
        ps.dedup_by_key(|&mut (d, _)| d);
        ps.into_iter()
            .map(|(d, s)| sparta::index::Posting::new(d, s))
            .collect::<Vec<_>>()
    });
    (vec(list, 1..4), 1usize..15)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn exact_algorithms_match_oracle_on_arbitrary_indexes((lists, k) in arb_index()) {
        let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::with_block_size(lists, 60, 4));
        let m = ix.num_terms();
        let q = Query::new((0..m).collect());
        let oracle = Oracle::compute(ix.as_ref(), &q, k);
        let cfg = SearchConfig::exact(k).with_seg_size(16).with_phi(32);
        let exec = DedicatedExecutor::new(2);
        for algo in sparta::core::registry::all_algorithms() {
            let r = algo.search(&ix, &q, &cfg, &exec);
            prop_assert_eq!(
                oracle.recall(&r.docs()),
                1.0,
                "{} missed: got {:?}, want {:?}",
                algo.name(),
                r.docs(),
                oracle.topk()
            );
            prop_assert_eq!(r.hits.len(), oracle.topk().len(), "{}", algo.name());
        }
    }

    #[test]
    fn striped_map_models_hashmap(ops in vec((0u8..8, 0u32..40, 0u32..1000), 0..200)) {
        // Exercise the full StripedMap surface against a sequential
        // HashMap model: every read/write path goes through the shared
        // fast-hash stripe selection, so this also pins the hasher's
        // correctness (a bad stripe_of would lose or duplicate keys).
        let striped: StripedMap<u32, u32> = StripedMap::with_stripes(4);
        let mut model: HashMap<u32, u32> = HashMap::new();
        for (op, k, v) in ops {
            match op {
                0 => {
                    prop_assert_eq!(striped.insert(k, v), model.insert(k, v));
                }
                1 => {
                    prop_assert_eq!(striped.remove(&k), model.remove(&k));
                }
                2 => {
                    prop_assert_eq!(
                        striped.get_or_insert_with(k, || v),
                        *model.entry(k).or_insert(v)
                    );
                }
                3 => {
                    // allow_insert toggles on the value parity; when
                    // insertion is refused the model stays unchanged.
                    let allow = v % 2 == 0;
                    let got = striped.get_or_try_insert_with(k, allow, || v);
                    let want = match model.get(&k) {
                        Some(&w) => Some(w),
                        None if allow => {
                            model.insert(k, v);
                            Some(v)
                        }
                        None => None,
                    };
                    prop_assert_eq!(got, want);
                }
                4 => {
                    let got = striped.update(&k, |x| *x = x.wrapping_add(v));
                    let want = match model.get_mut(&k) {
                        Some(x) => {
                            *x = x.wrapping_add(v);
                            true
                        }
                        None => false,
                    };
                    prop_assert_eq!(got, want);
                }
                5 => {
                    prop_assert_eq!(striped.contains_key(&k), model.contains_key(&k));
                }
                6 if k == 0 => {
                    // Rare (k must draw 0): full clear.
                    striped.clear();
                    model.clear();
                    prop_assert!(striped.is_empty());
                }
                _ => {
                    prop_assert_eq!(striped.get(&k), model.get(&k).copied());
                }
            }
            prop_assert_eq!(striped.len(), model.len());
        }
        let mut collected = striped.collect();
        collected.sort_unstable();
        let mut expected: Vec<(u32, u32)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn bounded_topk_models_sorting(items in vec((0u64..500, 0u32..10_000), 0..300), k in 1usize..20) {
        let mut heap = BoundedTopK::new(k);
        for &(s, d) in &items {
            heap.offer(s, d);
        }
        let got: Vec<(u64, u32)> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.score, e.item))
            .collect();
        let mut want = items;
        want.sort_by(|a, b| b.cmp(a));
        want.dedup();
        // Reference: sort desc by (score, item), take k distinct pairs.
        let mut seen = std::collections::HashSet::new();
        let want: Vec<(u64, u32)> = want
            .into_iter()
            .filter(|p| seen.insert(*p))
            .take(k)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn mutable_topk_models_max_per_item(
        items in vec((0u64..500, 0u32..30), 0..300),
        k in 1usize..10
    ) {
        // MutableTopK keyed by item keeps each item's max score; the
        // final contents are the top-k items by their max scores.
        let mut heap = MutableTopK::new(k);
        for &(s, d) in &items {
            heap.offer(s, d);
        }
        let got = heap.sorted();
        // Reference model.
        let mut best: HashMap<u32, u64> = HashMap::new();
        for (s, d) in items {
            let e = best.entry(d).or_insert(0);
            *e = (*e).max(s);
        }
        let mut want: Vec<(u64, u32)> = best.into_iter().map(|(d, s)| (s, d)).collect();
        want.sort_by(|a, b| b.cmp(a));
        want.truncate(k);
        // MutableTopK's eviction is greedy (an item whose score later
        // rises may have been evicted while low), so it can differ
        // from the offline optimum only when updates raced evictions;
        // with max-accumulated offers it must match exactly, because
        // offers are monotone per item. Verify exactness.
        prop_assert_eq!(got, want);
    }

    #[test]
    fn disk_round_trip_arbitrary_lists(lists in vec(vec((0u32..5000, 1u32..100_000), 0..200), 1..5)) {
        let lists: Vec<Vec<sparta::index::Posting>> = lists
            .into_iter()
            .map(|mut ps| {
                ps.sort_by_key(|&(d, _)| d);
                ps.dedup_by_key(|&mut (d, _)| d);
                ps.into_iter().map(|(d, s)| sparta::index::Posting::new(d, s)).collect()
            })
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "sparta-prop-{}-{:x}",
            std::process::id(),
            lists.iter().map(|l| l.len()).sum::<usize>()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut w = sparta::index::storage::IndexWriter::create(&dir, 5000, lists.len() as u32, 8).unwrap();
            for l in &lists {
                w.add_term(l.clone()).unwrap();
            }
            w.finish().unwrap();
        }
        let disk = DiskIndex::open(&dir, IoModel::free()).unwrap();
        let mem = InMemoryIndex::with_block_size(lists, 5000, 8);
        for t in 0..mem.num_terms() {
            let mut a = disk.score_cursor(t);
            let mut b = mem.score_cursor(t);
            loop {
                let (x, y) = (a.next(), b.next());
                prop_assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn synthetic_corpus_invariants(seed in 0u64..1000) {
        let model = CorpusModel {
            num_docs: 500,
            vocab_size: 120,
            zipf_exponent: 1.0,
            max_rate: 0.3,
            target_avg_doc_len: 40.0,
            seed,
        };
        let corpus = SynthCorpus::build(model);
        let stats = corpus.stats();
        prop_assert_eq!(stats.num_docs, 500);
        let mut df_sum = 0u64;
        corpus.for_each_term(|t, ps| {
            assert!(ps.windows(2).all(|w| w[0].0 < w[1].0), "term {t} unsorted");
            assert_eq!(stats.df(t) as usize, ps.len(), "df mismatch term {t}");
            df_sum += ps.len() as u64;
        });
        prop_assert!(df_sum > 0);
        // Average doc length within 30% of the target on any seed.
        prop_assert!((stats.avg_doc_len - 40.0).abs() < 12.0, "avgdl {}", stats.avg_doc_len);
    }
}
