//! The disk-resident index must be behaviorally identical to the
//! in-memory one: every algorithm returns the same results over both,
//! and the I/O accounting reflects each family's access pattern (the
//! paper's §5: sequential traversal for everyone, random accesses for
//! the RA family only).

use sparta::prelude::*;
use std::sync::Arc;

struct Fixture {
    mem: Arc<dyn Index>,
    disk: Arc<DiskIndex>,
    corpus: SynthCorpus,
    dir: std::path::PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn fixture(tag: &str, seed: u64) -> Fixture {
    let (mem, corpus) = sparta_testkit::build_index(seed);
    let builder = IndexBuilder::new(TfIdfScorer);
    let dir = std::env::temp_dir().join(format!("sparta-it-{tag}-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    builder.write_disk(&corpus, &dir).unwrap();
    let disk = Arc::new(DiskIndex::open(&dir, IoModel::free()).unwrap());
    Fixture {
        mem,
        disk,
        corpus,
        dir,
    }
}

#[test]
fn all_algorithms_agree_across_backends() {
    let f = fixture("agree", 21);
    let disk: Arc<dyn Index> = Arc::<DiskIndex>::clone(&f.disk);
    let log = QueryLog::generate(f.corpus.stats(), 2, 5, 3);
    let exec = DedicatedExecutor::new(3);
    for m in [1usize, 3, 5] {
        for q in log.of_length(m) {
            let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
            for algo in sparta::core::registry::all_algorithms() {
                let a = algo.search(&f.mem, q, &cfg, &exec);
                let b = algo.search(&disk, q, &cfg, &exec);
                assert_eq!(
                    a.scores(),
                    b.scores(),
                    "{} differs across backends for {:?}",
                    algo.name(),
                    q.terms
                );
            }
        }
    }
}

#[test]
fn io_profile_matches_algorithm_family() {
    let f = fixture("ioprofile", 22);
    let disk: Arc<dyn Index> = Arc::<DiskIndex>::clone(&f.disk);
    let log = QueryLog::generate(f.corpus.stats(), 1, 4, 9);
    let q = &log.of_length(4)[0];
    let cfg = SearchConfig::exact(20);
    let exec = DedicatedExecutor::new(4);
    let stats = f.disk.io_stats().unwrap();

    stats.reset();
    Sparta.search(&disk, q, &cfg, &exec);
    let (seq, rnd, _) = stats.snapshot();
    assert!(seq > 0, "Sparta reads sequentially");
    assert_eq!(rnd, 0, "Sparta never random-accesses");

    stats.reset();
    PRa.search(&disk, q, &cfg, &exec);
    let (_, rnd, _) = stats.snapshot();
    assert!(rnd > 0, "pRA hits the secondary index");

    stats.reset();
    PBmw.search(&disk, q, &cfg, &exec);
    let (seq, _, _) = stats.snapshot();
    assert!(seq > 0, "pBMW reads doc-order blocks");
}

#[test]
fn ssd_model_slows_down_queries() {
    let f = fixture("ssd", 23);
    let log = QueryLog::generate(f.corpus.stats(), 1, 3, 4);
    let q = &log.of_length(3)[0];
    let cfg = SearchConfig::exact(20);
    let exec = DedicatedExecutor::new(3);

    let ssd_ix = Arc::new(DiskIndex::open(&f.dir, IoModel::ssd()).unwrap());
    let ssd: Arc<dyn Index> = Arc::<DiskIndex>::clone(&ssd_ix);
    let r = Sparta.search(&ssd, q, &cfg, &exec);
    // Deterministic check (wall-clock comparisons flake under test
    // parallelism): the run must have taken at least the I/O charge
    // its own counters imply.
    let (seq, rnd, _) = ssd_ix.io_stats().unwrap().snapshot();
    let charged = IoModel::ssd().seq_block * seq as u32 + IoModel::ssd().random_access * rnd as u32;
    assert!(seq > 0, "disk run must fetch blocks");
    // Charges on different worker threads overlap in wall-clock time,
    // so the bound is charged / threads.
    let bound = charged / 3;
    assert!(
        r.elapsed >= bound,
        "elapsed {:?} below the charged I/O bound {bound:?}",
        r.elapsed
    );
}

#[test]
fn dictionary_statistics_match() {
    let f = fixture("dict", 24);
    assert_eq!(f.disk.num_docs(), f.mem.num_docs());
    assert_eq!(f.disk.num_terms(), f.mem.num_terms());
    for t in (0..f.mem.num_terms()).step_by(17) {
        assert_eq!(f.disk.doc_freq(t), f.mem.doc_freq(t), "df({t})");
        assert_eq!(f.disk.max_score(t), f.mem.max_score(t), "max({t})");
    }
}
