//! Flight-recorder integration: ring wraparound accounting, reader vs
//! writer races on a live ring, byte-identical Chrome-trace export
//! under the deterministic executor, per-worker timeline completeness,
//! and the stall watchdog firing on a genuinely wedged pool.

use sparta::prelude::*;
use sparta_exec::{JobQueue, WatchdogConfig};
use sparta_obs::{
    chrome_trace_string, json, recorder, validate_trace_json, ClockMode, EventKind, EventRing,
    FlightRecorder, ObsClock,
};
use sparta_testkit::{base_seed, build_index, long_query};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn ring_wraparound_keeps_newest_events_and_accounts_drops() {
    let clock = Arc::new(ObsClock::new(ClockMode::Logical));
    let ring = EventRing::new(0, 8, clock);
    for i in 0..20u64 {
        ring.record(EventKind::ScoreMark, i);
    }
    assert_eq!(ring.head(), 20);
    assert_eq!(ring.len(), 8);
    assert_eq!(ring.dropped_events(), 12);
    let mut payloads = Vec::new();
    let skipped = ring.for_each(|e| payloads.push(e.payload));
    assert_eq!(skipped, 0, "single-threaded read must never skip");
    assert_eq!(payloads, (12..20).collect::<Vec<u64>>());
}

#[test]
fn concurrent_reader_only_sees_well_formed_events() {
    const WRITES: u64 = 50_000;
    let clock = Arc::new(ObsClock::new(ClockMode::Logical));
    let ring = Arc::new(EventRing::new(3, 64, clock));
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let _guard = recorder::install_ring(Arc::clone(&ring));
                for i in 0..WRITES {
                    recorder::record(EventKind::QueuePush, i);
                }
                done.store(true, Ordering::Release);
            });
        }
        // Race the reader against the writer the whole time: the
        // seqlock must deliver only fully-written events (skipping
        // in-flight slots), each internally consistent.
        while !done.load(Ordering::Acquire) {
            let mut last_ts = 0;
            ring.for_each(|e| {
                assert_eq!(e.worker, 3);
                assert_eq!(e.kind, EventKind::QueuePush);
                assert!(e.payload < WRITES);
                assert!(e.ts > last_ts, "snapshot not oldest-to-newest");
                last_ts = e.ts;
            });
        }
    });
    assert_eq!(ring.head(), WRITES);
    assert_eq!(ring.dropped_events(), WRITES - 64);
    let skipped = ring.for_each(|_| {});
    assert_eq!(skipped, 0, "quiescent read must never skip");
}

fn traced_trace_string(seed: u64) -> String {
    let (ix, corpus) = build_index(7);
    let q = long_query(&corpus, 11);
    let cfg = SearchConfig::exact(10)
        .with_seg_size(64)
        .with_phi(256)
        .with_trace(true)
        .with_spans(true)
        .with_clock(ClockMode::Logical);
    let rec = FlightRecorder::new(4, 1 << 12, ClockMode::Logical);
    let exec = DeterministicExecutor::new(seed).with_recorder(Arc::clone(&rec));
    Sparta.search(&ix, &q, &cfg, &exec);
    chrome_trace_string(&rec)
}

#[test]
fn trace_json_is_byte_identical_across_same_seed_runs() {
    let a = traced_trace_string(base_seed());
    let b = traced_trace_string(base_seed());
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed trace export must be byte-identical");
    validate_trace_json(&a).expect("trace must validate");
}

#[test]
fn trace_timeline_is_complete_for_every_worker() {
    let text = traced_trace_string(base_seed());
    let doc = json::parse(&text).expect("trace parses");
    let events = doc.get("traceEvents").and_then(|j| j.as_arr()).unwrap();
    // (tid, name) pairs of non-metadata events.
    let mut seen: Vec<(u64, String)> = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|j| j.as_str().map(str::to_string));
        if ph.as_deref() == Some("M") {
            continue;
        }
        let tid = ev.get("tid").and_then(|j| j.as_f64()).unwrap() as u64;
        let name = ev
            .get("name")
            .and_then(|j| j.as_str().map(str::to_string))
            .unwrap();
        seen.push((tid, name));
    }
    let workers: Vec<u64> = {
        let mut w: Vec<u64> = seen.iter().map(|(t, _)| *t).collect();
        w.sort_unstable();
        w.dedup();
        w
    };
    assert_eq!(workers.len(), 4, "all virtual workers must appear");
    for w in workers {
        for want in ["job", "park", "queue_wait"] {
            assert!(
                seen.iter().any(|(t, n)| *t == w && n == want),
                "worker {w} has no `{want}` slice"
            );
        }
    }
}

#[test]
fn watchdog_dumps_rings_when_pool_wedges() {
    // Wedge a queue for real: the deterministic executor's stall fault
    // pops the only job and silently drops it — outstanding never
    // reaches zero, exactly like a worker dying mid-job.
    let q = JobQueue::new();
    q.push(Box::new(|| {}));
    let det = DeterministicExecutor::new(1).with_faults(FaultPlan::none().stall_at(0));
    det.run(Arc::clone(&q));
    assert_eq!(q.outstanding(), 1, "stall fault must wedge the queue");

    let rec = FlightRecorder::new(2, 1 << 10, ClockMode::Wall);
    let pool = WorkerPool::with_recorder(2, None, Arc::clone(&rec));
    let dump = std::env::temp_dir().join(format!("sparta_wd_test_{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&dump);
    let wd = pool
        .watchdog(WatchdogConfig {
            quiet: Duration::from_millis(300),
            poll: Duration::from_millis(20),
            dump_path: Some(dump.clone()),
            max_dumps: 1,
            on_dump: None,
        })
        .expect("pool has a recorder");

    pool.submit(Arc::clone(&q));
    let deadline = Instant::now() + Duration::from_secs(20);
    while wd.fired() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(wd.fired() >= 1, "watchdog must fire on the wedged pool");

    let text = std::fs::read_to_string(&dump).expect("dump file written");
    assert!(text.contains("stall watchdog"), "dump: {text}");
    assert!(text.contains("outstanding"), "dump: {text}");
    // The workers' last recorded act before going quiet is parking.
    assert!(text.contains("park"), "dump lacks parked workers: {text}");
    let _ = std::fs::remove_file(&dump);
}
