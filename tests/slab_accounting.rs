//! Hot-path allocation accounting (ISSUE 3 acceptance): Sparta's
//! per-query candidate records live in a [`DocSlab`] arena whose only
//! heap allocations are its geometric blocks, and segment
//! continuations recycle their job boxes instead of re-boxing a
//! closure per segment. Both claims are asserted here through the
//! slab's own accounting counters and the queue's recycle counter —
//! under deterministic schedule exploration, so a violation replays.

use sparta::core::sparta::doc_slab::{DocHandle, DocSlab};
use sparta::exec::{CyclicJob, Job, JobQueue};
use sparta::prelude::*;
use sparta_testkit::{build_index, long_query, sweep_schedules};
use std::sync::{Arc, Mutex};

/// Smallest number of geometric blocks (base 256, doubling) whose
/// cumulative capacity covers `n` records.
fn blocks_needed(n: usize) -> usize {
    let mut blocks = 0;
    let mut cap = 0usize;
    while cap < n {
        cap += 256 << blocks;
        blocks += 1;
    }
    blocks
}

/// A writer that admits `per_step` documents per scheduling step as a
/// cyclic job — the same shape as Sparta's `PROCESSTERM` segments.
struct AdmitJob {
    slab: Arc<DocSlab>,
    handles: Arc<Mutex<Vec<DocHandle>>>,
    term: usize,
    next_id: u32,
    end_id: u32,
    per_step: u32,
}

impl CyclicJob for AdmitJob {
    fn run_step(&mut self) -> bool {
        let stop = self.end_id.min(self.next_id + self.per_step);
        let mut batch = Vec::with_capacity((stop - self.next_id) as usize);
        for id in self.next_id..stop {
            let h = self.slab.alloc(id);
            // §4.3 ownership: this job is the sole writer of its term
            // slot; the running sum commutes across owners.
            self.slab.set_score(h, self.term, self.term as u32 + 1);
            batch.push(h);
        }
        self.handles.lock().unwrap().extend(batch);
        self.next_id = stop;
        self.next_id < self.end_id
    }
}

/// Direct slab stress across explored schedules: 4 cyclic writers
/// admit 1200 disjoint documents in interleaved steps. Afterwards the
/// slab must hold exactly one record per document with the correct
/// running sums, have performed exactly one allocation per touched
/// block (the ≤1-alloc-per-block acceptance bound, with equality), and
/// the queue must have recycled every continuation step.
#[test]
fn doc_slab_stress_under_schedule_sweep() {
    const WRITERS: u32 = 4;
    const PER_WRITER: u32 = 300;
    const TOTAL: usize = (WRITERS * PER_WRITER) as usize;
    sweep_schedules(16, |seed, exec| {
        let slab = Arc::new(DocSlab::new(WRITERS as usize));
        let handles = Arc::new(Mutex::new(Vec::new()));
        let queue = JobQueue::new();
        for w in 0..WRITERS {
            queue.push(Job::cyclic(AdmitJob {
                slab: Arc::clone(&slab),
                handles: Arc::clone(&handles),
                term: w as usize,
                next_id: w * PER_WRITER,
                end_id: (w + 1) * PER_WRITER,
                per_step: 30,
            }));
        }
        exec.run(Arc::clone(&queue));

        let ctx = format!("seed {seed}");
        assert_eq!(slab.len(), TOTAL, "{ctx}: lost admissions");
        let handles = handles.lock().unwrap();
        let mut ids: Vec<DocId> = handles.iter().map(|&h| slab.id(h)).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TOTAL, "{ctx}: two handles share a record");
        let total: u64 = handles.iter().map(|&h| slab.current_sum(h)).sum();
        assert_eq!(
            total,
            u64::from(PER_WRITER) * (1 + 2 + 3 + 4),
            "{ctx}: running sums corrupted under this schedule"
        );
        // Exactly one allocation per touched block: 1200 records need
        // blocks 0..=2 (256 + 512 + 1024 ≥ 1200), never more.
        assert_eq!(
            slab.blocks_allocated(),
            blocks_needed(TOTAL),
            "{ctx}: slab performed more than one allocation per block"
        );
        // Each writer ran 10 steps as one recycled box: 9 recycles
        // per writer, zero fresh boxes after the initial push.
        assert_eq!(queue.recycled(), WRITERS as usize * 9, "{ctx}");
        assert_eq!(queue.executed(), TOTAL / 30, "{ctx}");
    });
}

/// End-to-end accounting through Sparta itself: on every explored
/// schedule the reported work must show recycled segment
/// continuations (steady-state job boxes are reused, not
/// re-allocated), and the candidate map peak bounds the slab's record
/// count story (docmap_final ≤ docmap_peak).
#[test]
fn sparta_recycles_continuations_on_all_schedules() {
    let (ix, corpus) = build_index(67);
    let q = long_query(&corpus, 5);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    sweep_schedules(16, |seed, exec| {
        let r = Sparta.search(&ix, &q, &cfg, exec);
        assert!(
            r.work.jobs_recycled > 0,
            "seed {seed}: multi-segment traversal allocated a fresh box \
             per segment instead of recycling"
        );
        assert!(
            r.work.docmap_final <= r.work.docmap_peak,
            "seed {seed}: docmap_peak {} below final {}",
            r.work.docmap_peak,
            r.work.docmap_final
        );
    });
}
