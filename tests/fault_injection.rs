//! Fault-injection tests: the execution stack must survive panicking
//! jobs, delayed segments, and lost continuations — without wedging the
//! query, poisoning the pool, or corrupting a *subsequent* query.

use sparta::prelude::*;
use sparta_testkit::{build_index, long_query, sweep_schedules};
use std::sync::Arc;

/// A panicking job injected mid-query is caught and surfaced in
/// `WorkStats::jobs_panicked`; the query still terminates with perfect
/// recall (the injected job carries no Sparta work).
#[test]
fn injected_panic_is_recorded_and_query_stays_exact() {
    let (ix, corpus) = build_index(71);
    let q = long_query(&corpus, 1);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    let oracle = Oracle::compute(ix.as_ref(), &q, 15);
    sweep_schedules(8, |seed, exec| {
        let faulty = exec.clone().with_faults(FaultPlan::none().panic_at(3));
        let r = Sparta.search(&ix, &q, &cfg, &faulty);
        assert_eq!(r.work.jobs_panicked, 1, "seed {seed}: panic not recorded");
        assert_eq!(
            oracle.recall(&r.docs()),
            1.0,
            "seed {seed}: panic corrupted the result"
        );
    });
}

/// Delayed segments (jobs pushed to the back of the queue) must not
/// change the result — Sparta's invariants are order-independent.
#[test]
fn deferred_segments_do_not_change_results() {
    let (ix, corpus) = build_index(72);
    let q = long_query(&corpus, 2);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    let oracle = Oracle::compute(ix.as_ref(), &q, 15);
    sweep_schedules(8, |seed, exec| {
        let faults = FaultPlan::none().defer_at(1).defer_at(5).defer_at(9);
        let faulty = exec.clone().with_faults(faults);
        let r = Sparta.search(&ix, &q, &cfg, &faulty);
        assert_eq!(
            oracle.recall(&r.docs()),
            1.0,
            "seed {seed}: deferral changed the result"
        );
    });
}

/// Dropped continuations (a worker dying between pop and run) must not
/// hang the query: completion bookkeeping still runs. Results may be
/// partial — only liveness and structural validity are asserted.
#[test]
fn dropped_continuations_never_hang() {
    let (ix, corpus) = build_index(73);
    let q = long_query(&corpus, 3);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    sweep_schedules(16, |seed, exec| {
        let faults = FaultPlan::none().drop_at(2).drop_at(7);
        let faulty = exec.clone().with_faults(faults);
        // Terminates (the test harness itself would hang otherwise)…
        let r = Sparta.search(&ix, &q, &cfg, &faulty);
        // …with rank-ordered hits and honest lower-bound scores.
        assert!(
            r.hits.windows(2).all(|w| w[0].score >= w[1].score),
            "seed {seed}: rank order broken after dropped jobs"
        );
    });
}

/// Acceptance scenario from the ISSUE: a panicking job on the *shared
/// worker pool* neither kills pool workers nor corrupts the top-k of
/// the next query on the same pool.
#[test]
fn pool_survives_panicking_job_and_serves_next_query() {
    let (ix, corpus) = build_index(74);
    let q = long_query(&corpus, 4);
    let cfg = SearchConfig::exact(15).with_seg_size(64).with_phi(256);
    let oracle = Oracle::compute(ix.as_ref(), &q, 15);
    let pool = WorkerPool::new(3);

    // A "query" consisting of panicking jobs — one per worker, so every
    // worker thread exercises the catch_unwind path.
    let poison = sparta::exec::JobQueue::new();
    for _ in 0..3 {
        poison.push(Box::new(|| panic!("injected fault: poison job")));
    }
    pool.run(Arc::clone(&poison));
    assert!(poison.is_complete(), "poisoned queue must still complete");
    assert_eq!(poison.panicked(), 3, "all panics caught and counted");

    // The same pool must now serve real queries flawlessly.
    for _ in 0..3 {
        let r = Sparta.search(&ix, &q, &cfg, &pool);
        assert_eq!(
            oracle.recall(&r.docs()),
            1.0,
            "query after poison job lost recall"
        );
        assert_eq!(r.work.jobs_panicked, 0, "clean query reported panics");
    }
}

/// Same scenario on a dedicated executor: a panicking job inside one
/// query does not prevent later queries from succeeding.
#[test]
fn dedicated_executor_survives_poison_queue() {
    let (ix, corpus) = build_index(75);
    let q = long_query(&corpus, 5);
    let cfg = SearchConfig::exact(10);
    let exec = DedicatedExecutor::new(2);

    let poison = sparta::exec::JobQueue::new();
    poison.push(Box::new(|| panic!("injected fault: poison job")));
    exec.run(Arc::clone(&poison));
    assert_eq!(poison.panicked(), 1);

    let oracle = Oracle::compute(ix.as_ref(), &q, 10);
    let r = Sparta.search(&ix, &q, &cfg, &exec);
    assert_eq!(oracle.recall(&r.docs()), 1.0);
}
