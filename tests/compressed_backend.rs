//! The compressed posting backend as every algorithm sees it:
//! property-based roundtrips over all three cursor traits, the
//! quantized-bound admissibility guarantee, and the full algorithm
//! matrix returning identical top-k results on raw vs compressed
//! indexes of the same corpus.

use proptest::collection::vec;
use proptest::prelude::*;
use sparta::index::{
    BoundMode, CompressedIndex, InMemoryIndex, Index, IndexBuilder, IndexKind, Posting,
    ScoreQuantizer,
};
use sparta::prelude::*;
use std::sync::Arc;

const NUM_DOCS: u64 = 96;

/// Arbitrary posting lists: m lists of doc-sorted, deduped (doc,
/// score) pairs — including empty lists, singletons, and score ties.
fn arb_lists() -> impl Strategy<Value = Vec<Vec<Posting>>> {
    let list = vec((0u32..NUM_DOCS as u32, 1u32..2_000), 0..120).prop_map(|mut ps| {
        ps.sort_by_key(|&(d, _)| d);
        ps.dedup_by_key(|&mut (d, _)| d);
        ps.into_iter()
            .map(|(d, s)| Posting::new(d, s))
            .collect::<Vec<_>>()
    });
    vec(list, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // ScoreCursor: the compressed score-ordered stream (including
    // segment decode) equals the raw one, posting for posting.
    #[test]
    fn score_cursors_round_trip(lists in arb_lists()) {
        let raw = InMemoryIndex::with_block_size(lists.clone(), NUM_DOCS, 8);
        let comp = CompressedIndex::with_block_size(lists, NUM_DOCS, 8);
        for t in 0..raw.num_terms() {
            let mut a = raw.score_cursor(t);
            let mut b = comp.score_cursor(t);
            prop_assert_eq!(a.len(), b.len());
            loop {
                let (x, y) = (a.next(), b.next());
                prop_assert_eq!(x, y, "term {}", t);
                if x.is_none() {
                    break;
                }
            }
            // Segment decode path (what pJASS/Sparta actually call).
            let mut a = raw.score_cursor(t);
            let mut b = comp.score_cursor(t);
            let (mut sa, mut sb) = (Vec::new(), Vec::new());
            loop {
                let (n, m) = (a.next_segment(5, &mut sa), b.next_segment(5, &mut sb));
                prop_assert_eq!(n, m, "term {}", t);
                prop_assert_eq!(&sa, &sb, "term {}", t);
                if n == 0 {
                    break;
                }
            }
        }
    }

    // DocCursor: a mixed advance/seek/skip walk tracks the raw
    // cursor's docs, scores, and block-max metadata exactly.
    #[test]
    fn doc_cursors_round_trip(lists in arb_lists(), ops in vec((0u8..4, 0u32..NUM_DOCS as u32), 0..60)) {
        let raw = InMemoryIndex::with_block_size(lists.clone(), NUM_DOCS, 8);
        let comp = CompressedIndex::with_block_size(lists, NUM_DOCS, 8);
        for t in 0..raw.num_terms() {
            let mut a = raw.doc_cursor(t);
            let mut b = comp.doc_cursor(t);
            prop_assert_eq!(a.max_score(), b.max_score(), "term {}", t);
            for &(op, target) in &ops {
                match op {
                    0 => { prop_assert_eq!(a.advance(), b.advance()); }
                    1 => { prop_assert_eq!(a.seek(target), b.seek(target)); }
                    2 => { prop_assert_eq!(a.skip_block(), b.skip_block()); }
                    _ => { prop_assert_eq!(a.block_at(target), b.block_at(target)); }
                }
                prop_assert_eq!(a.doc(), b.doc(), "term {}", t);
                if a.doc().is_some() {
                    prop_assert_eq!(a.score(), b.score(), "term {}", t);
                    prop_assert_eq!(a.block_max_score(), b.block_max_score(), "term {}", t);
                    prop_assert_eq!(a.block_last_doc(), b.block_last_doc(), "term {}", t);
                }
            }
        }
    }

    // RandomAccess: every (term, doc) probe — members and
    // non-members — returns the raw score.
    #[test]
    fn random_access_round_trips(lists in arb_lists()) {
        let raw = InMemoryIndex::with_block_size(lists.clone(), NUM_DOCS, 8);
        let comp = CompressedIndex::with_block_size(lists, NUM_DOCS, 8);
        let (ra, rb) = (raw.random_access().unwrap(), comp.random_access().unwrap());
        for t in 0..raw.num_terms() {
            for d in 0..NUM_DOCS as u32 {
                prop_assert_eq!(ra.term_score(t, d), rb.term_score(t, d), "term {} doc {}", t, d);
            }
        }
    }

    // Quantization admissibility on arbitrary score ranges: the
    // round-up u8 code never dequantizes below the input, and stays
    // within one quantization step above it.
    #[test]
    fn quantizer_is_admissible(min in 0u32..3_000_000, span in 0u32..4_000_000, scores in vec(0.0f64..1.0, 1..40)) {
        let q = ScoreQuantizer::fit(min, min.saturating_add(span));
        for &x in &scores {
            let s = min + (x * span as f64) as u32;
            let back = q.dequantize(q.quantize_ceil(s));
            prop_assert!(back >= s, "quantized bound {} below true score {}", back, s);
            prop_assert!(
                u64::from(back) <= u64::from(s) + u64::from(q.scale),
                "bound {} looser than one step above {} (scale {})", back, s, q.scale
            );
        }
    }

    // Quantized block maxima are admissible *as served*: under
    // `BoundMode::Quantized` every posting's block bound dominates its
    // true score, and dominates the exact block max it summarizes.
    #[test]
    fn quantized_block_bounds_dominate_scores(lists in arb_lists()) {
        let comp = CompressedIndex::with_block_size(lists.clone(), NUM_DOCS, 8)
            .with_bound_mode(BoundMode::Quantized);
        let exact = CompressedIndex::with_block_size(lists.clone(), NUM_DOCS, 8);
        for (t, list) in lists.iter().enumerate() {
            let quant = comp.doc_cursor(t as u32);
            let tight = exact.doc_cursor(t as u32);
            for p in list {
                let (last_q, bound_q) = quant.block_at(p.doc).expect("member doc has a block");
                let (last_e, bound_e) = tight.block_at(p.doc).expect("member doc has a block");
                prop_assert_eq!(last_q, last_e, "block boundaries are mode-independent");
                prop_assert!(bound_q >= p.score, "quantized bound {} < score {}", bound_q, p.score);
                prop_assert!(bound_q >= bound_e, "quantized bound {} < exact max {}", bound_q, bound_e);
            }
        }
    }
}

/// The full algorithm matrix on a real synthetic corpus: identical
/// top-k doc ids AND scores on raw vs compressed (the default backend
/// is bit-exact), recall@k == 1.0 against the oracle on both.
///
/// Both backends replay the *same seeded schedule* per query: with a
/// free-running multi-thread executor, parallel algorithms break
/// score ties at the k boundary schedule-dependently, which would
/// flake this doc-id comparison for reasons unrelated to the backend.
#[test]
fn full_matrix_raw_vs_compressed_equality() {
    let corpus = sparta_testkit::build_corpus(91);
    let builder = IndexBuilder::new(TfIdfScorer);
    let raw: Arc<dyn Index> = Arc::from(builder.build_kind(&corpus, IndexKind::Raw));
    let comp: Arc<dyn Index> = Arc::from(builder.build_kind(&corpus, IndexKind::Compressed));
    let k = 10;
    let cfg = SearchConfig::exact(k);
    let log = QueryLog::generate(corpus.stats(), 3, 6, 17);
    for m in [1usize, 3, 6] {
        for (qi, q) in log.of_length(m).iter().enumerate() {
            let oracle = Oracle::compute(raw.as_ref(), q, k);
            for (ai, algo) in sparta::core::registry::all_algorithms().iter().enumerate() {
                let seed = 0x5eed_0000 + (qi as u64) * 64 + ai as u64;
                let a = algo.search(&raw, q, &cfg, &DeterministicExecutor::new(seed));
                let b = algo.search(&comp, q, &cfg, &DeterministicExecutor::new(seed));
                assert_eq!(
                    a.docs(),
                    b.docs(),
                    "{} returned different top-k doc ids on m={m}",
                    algo.name()
                );
                assert_eq!(
                    a.scores(),
                    b.scores(),
                    "{} returned different scores on m={m}",
                    algo.name()
                );
                assert_eq!(oracle.recall(&b.docs()), 1.0, "{} recall@k", algo.name());
            }
        }
    }
}

/// Quantized bound mode stays exact for threshold algorithms: looser
/// (but admissible) block maxima may change *work*, never the result
/// set (scores are served losslessly from the codebook either way).
#[test]
fn quantized_bounds_preserve_recall() {
    let corpus = sparta_testkit::build_corpus(92);
    let builder = IndexBuilder::new(TfIdfScorer);
    let raw: Arc<dyn Index> = Arc::from(builder.build_kind(&corpus, IndexKind::Raw));
    let comp: Arc<dyn Index> = Arc::new(
        builder
            .build_compressed(&corpus)
            .with_bound_mode(BoundMode::Quantized),
    );
    let k = 10;
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(2);
    let log = QueryLog::generate(corpus.stats(), 2, 6, 23);
    for q in log.of_length(4) {
        let oracle = Oracle::compute(raw.as_ref(), q, k);
        for name in ["sparta", "pbmw", "wand", "maxscore"] {
            let algo = sparta::core::algorithm_by_name(name).unwrap();
            let r = algo.search(&comp, q, &cfg, &exec);
            assert_eq!(
                oracle.recall(&r.docs()),
                1.0,
                "{name} recall under quantized bounds: got {:?}, want {:?}",
                r.docs(),
                oracle.topk()
            );
        }
    }
}

/// The compressed backend is dramatically smaller on a corpus-shaped
/// index, and the equality above proves it costs no fidelity.
#[test]
fn corpus_footprint_shrinks() {
    let corpus = sparta_testkit::build_corpus(93);
    let builder = IndexBuilder::new(TfIdfScorer);
    let raw = builder.build_memory(&corpus);
    let comp = builder.build_compressed(&corpus);
    let raw_fp = Index::footprint(&raw).unwrap().total();
    let comp_fp = Index::footprint(&comp).unwrap().total();
    assert!(
        comp_fp * 2 < raw_fp,
        "compressed {comp_fp} not under half of raw {raw_fp}"
    );
}
