//! Cross-algorithm integration tests: every exact algorithm must
//! retrieve the true top-k (verified against the exhaustive oracle) on
//! the same synthetic corpora the benchmarks use, across thread
//! counts; approximate variants must trade recall coherently.

use sparta::prelude::*;
use sparta_testkit::build_index as build;
use std::sync::Arc;

fn queries(corpus: &SynthCorpus, max_len: usize, seed: u64) -> Vec<Query> {
    sparta_testkit::queries(corpus, 3, max_len, seed)
}

#[test]
fn all_exact_algorithms_match_oracle() {
    let (ix, corpus) = build(1);
    let algos = sparta::core::registry::all_algorithms();
    for q in queries(&corpus, 6, 2) {
        let k = 20;
        let oracle = Oracle::compute(ix.as_ref(), &q, k);
        let cfg = SearchConfig::exact(k).with_seg_size(128).with_phi(512);
        for algo in &algos {
            for threads in [1usize, 4] {
                let exec = DedicatedExecutor::new(threads);
                let r = algo.search(&ix, &q, &cfg, &exec);
                assert_eq!(
                    oracle.recall(&r.docs()),
                    1.0,
                    "{} (t={threads}) missed top-k for {:?}: got {:?}",
                    algo.name(),
                    q.terms,
                    r.docs()
                );
            }
        }
    }
}

#[test]
fn full_scoring_algorithms_report_exact_scores() {
    let (ix, corpus) = build(3);
    let q = &queries(&corpus, 4, 5)[6]; // a multi-term query
    let k = 15;
    let oracle = Oracle::compute(ix.as_ref(), q, k);
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(4);
    for name in [
        "ra", "pra", "bmw", "pbmw", "wand", "maxscore", "jass", "pjass",
    ] {
        let algo = sparta::core::algorithm_by_name(name).unwrap();
        let r = algo.search(&ix, q, &cfg, &exec);
        for h in &r.hits {
            assert_eq!(
                h.score,
                oracle.score(h.doc),
                "{name} reported wrong score for doc {}",
                h.doc
            );
        }
    }
}

#[test]
fn nra_family_scores_are_lower_bounds() {
    let (ix, corpus) = build(4);
    let q = &queries(&corpus, 5, 7)[9];
    let k = 10;
    let oracle = Oracle::compute(ix.as_ref(), q, k);
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(4);
    for name in ["nra", "pnra", "snra", "sparta"] {
        let algo = sparta::core::algorithm_by_name(name).unwrap();
        let r = algo.search(&ix, q, &cfg, &exec);
        for h in &r.hits {
            assert!(
                h.score <= oracle.score(h.doc),
                "{name}: LB {} exceeds true score {} for doc {}",
                h.score,
                oracle.score(h.doc),
                h.doc
            );
        }
    }
}

#[test]
fn sparta_delta_variants_order_recall() {
    // Tighter Δ ⇒ earlier stop ⇒ recall no higher (statistically;
    // we allow equality).
    let (ix, corpus) = build(5);
    let q = Query::new(queries(&corpus, 8, 11).into_iter().last().unwrap().terms);
    let k = 50;
    let oracle = Oracle::compute(ix.as_ref(), &q, k);
    let exec = DedicatedExecutor::new(4);
    let base = SearchConfig::exact(k).with_seg_size(128);
    let r_exact = Sparta.search(&ix, &q, &base, &exec);
    let r_loose = Sparta.search(
        &ix,
        &q,
        &base.with_delta(Some(std::time::Duration::from_millis(200))),
        &exec,
    );
    assert_eq!(oracle.recall(&r_exact.docs()), 1.0);
    // A generous Δ on a tiny corpus usually completes exactly too.
    assert!(oracle.recall(&r_loose.docs()) >= 0.8);
}

#[test]
fn all_algorithms_handle_single_term_queries() {
    let (ix, corpus) = build(6);
    let q = queries(&corpus, 1, 13)[0].clone();
    let k = 10;
    let oracle = Oracle::compute(ix.as_ref(), &q, k);
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(2);
    for algo in sparta::core::registry::all_algorithms() {
        let r = algo.search(&ix, &q, &cfg, &exec);
        assert_eq!(oracle.recall(&r.docs()), 1.0, "{}", algo.name());
    }
}

#[test]
fn all_algorithms_handle_rare_term_queries() {
    // Query a tail term with very few postings: fewer matches than k.
    let (ix, corpus) = build(7);
    let stats = corpus.stats();
    let rare = (0..stats.vocab_size() as u32)
        .filter(|&t| stats.df(t) >= 1)
        .min_by_key(|&t| stats.df(t))
        .expect("corpus has terms");
    let q = Query::new(vec![rare]);
    // Force the fewer-matches-than-k regime.
    let k = 2 * stats.df(rare) as usize;
    let oracle = Oracle::compute(ix.as_ref(), &q, k);
    let cfg = SearchConfig::exact(k);
    let exec = DedicatedExecutor::new(2);
    for algo in sparta::core::registry::all_algorithms() {
        let r = algo.search(&ix, &q, &cfg, &exec);
        assert_eq!(
            r.hits.len(),
            oracle.topk().len(),
            "{} returned wrong count for rare term",
            algo.name()
        );
        assert_eq!(oracle.recall(&r.docs()), 1.0, "{}", algo.name());
    }
}

#[test]
fn work_profiles_match_paper_characterization() {
    // The qualitative work-based claims of §5.3 on a mid-size query.
    let (ix, corpus) = build(8);
    let q = queries(&corpus, 6, 17).pop().unwrap();
    let k = 30;
    let cfg = SearchConfig::exact(k).with_seg_size(128).with_phi(512);
    let exec = DedicatedExecutor::new(4);
    let get = |name: &str| {
        sparta::core::algorithm_by_name(name)
            .unwrap()
            .search(&ix, &q, &cfg, &exec)
    };
    let sparta = get("sparta");
    let pra = get("pra");
    let pjass = get("pjass");
    let snra = get("snra");
    // Only the RA family random-accesses.
    assert_eq!(sparta.work.random_accesses, 0);
    assert!(pra.work.random_accesses > 0);
    // pJASS-exact scans every posting of the query's lists.
    let total: u64 = q.terms.iter().map(|&t| ix.doc_freq(t)).sum();
    assert_eq!(pjass.work.postings_scanned, total);
    // Shared-nothing scans at least as much as shared-state Sparta.
    assert!(snra.work.postings_scanned >= sparta.work.postings_scanned);
}

#[test]
fn sparta_early_stops_on_skewed_lists() {
    // Exact early stopping requires the top-k to be unambiguous well
    // before exhaustion: plant k clear winners that score high in
    // every list, far above everything else. UBStop then fires right
    // after the winners' band and the cleaner prunes the rest.
    use sparta::index::Posting;
    let n = 50_000u32;
    let k = 10u32;
    let lists: Vec<Vec<Posting>> = (0..3u32)
        .map(|t| {
            (0..n)
                .map(|d| {
                    let x = d.wrapping_mul(2654435761).wrapping_add(t * 977);
                    let score = if d < k {
                        500_000 + d * 13 + t
                    } else {
                        1 + x % 100
                    };
                    Posting::new(d, score)
                })
                .collect()
        })
        .collect();
    let ix: Arc<dyn Index> = Arc::new(InMemoryIndex::from_term_postings(lists, u64::from(n)));
    let q = Query::new(vec![0, 1, 2]);
    let cfg = SearchConfig::exact(k as usize)
        .with_seg_size(512)
        .with_phi(4096);
    let r = Sparta.search(&ix, &q, &cfg, &DedicatedExecutor::new(3));
    let total = 3 * u64::from(n);
    assert!(
        r.work.postings_scanned < total / 4,
        "Sparta scanned {} of {total}",
        r.work.postings_scanned
    );
    let oracle = Oracle::compute(ix.as_ref(), &q, k as usize);
    assert_eq!(oracle.recall(&r.docs()), 1.0);
}
